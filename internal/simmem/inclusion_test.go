package simmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// contains reports whether the cache currently holds addr's line.
func (c *cache) contains(addr uint64) bool {
	set, tag := c.setFor(addr)
	base := set * uint64(c.assoc)
	for i := uint64(0); i < uint64(c.assoc); i++ {
		l := c.lines[base+i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// TestQuickInclusionInvariant: after any random mix of loads and
// stores, every line in L1 must also be present in L2 (strict
// inclusion, enforced by back-invalidation).
func TestQuickInclusionInvariant(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		clk := &sim.Clock{}
		cpu := sim.NewCPU(clk, sim.CPUConfig{MHz: 100})
		h, err := New(cpu, Config{
			Caches: []CacheConfig{
				{Name: "L1", Size: 1 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5},
				{Name: "L2", Size: 4 << 10, LineSize: 64, Assoc: 2, LatencyNS: 50},
			},
			DRAM: DRAMConfig{LatencyNS: 300},
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		base := h.Alloc(32 << 10)
		for _, op := range opsRaw {
			addr := base + uint64(op%1024)*32
			if rng.Intn(2) == 0 {
				h.Load(addr)
			} else {
				h.Store(addr)
			}
		}
		// Check inclusion: every valid L1 line's address is in L2.
		l1, l2 := h.caches[0], h.caches[1]
		for _, l := range l1.lines {
			if !l.valid {
				continue
			}
			addr := l.tag * uint64(l1.cfg.LineSize)
			if !l2.contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// refSetAssoc is an independent reference model of a set-associative
// LRU cache, used to cross-check hits/misses of the production cache
// on random traces.
type refSetAssoc struct {
	sets  int
	assoc int
	line  int
	data  [][]uint64 // per set, MRU last
}

func newRefSetAssoc(size, line, assoc int) *refSetAssoc {
	sets := size / line / assoc
	r := &refSetAssoc{sets: sets, assoc: assoc, line: line}
	r.data = make([][]uint64, sets)
	return r
}

func (r *refSetAssoc) access(addr uint64) bool {
	lineAddr := addr / uint64(r.line)
	set := int(lineAddr % uint64(r.sets))
	ways := r.data[set]
	for i, t := range ways {
		if t == lineAddr {
			r.data[set] = append(append(ways[:i:i], ways[i+1:]...), t)
			return true
		}
	}
	ways = append(ways, lineAddr)
	if len(ways) > r.assoc {
		ways = ways[1:]
	}
	r.data[set] = ways
	return false
}

// TestQuickSetAssocMatchesReference: the production cache and the
// reference model agree on every access of random traces across
// several geometries.
func TestQuickSetAssocMatchesReference(t *testing.T) {
	geoms := []struct{ size, line, assoc int }{
		{1 << 10, 32, 1},
		{2 << 10, 32, 2},
		{4 << 10, 64, 4},
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, g := range geoms {
			c, err := newCache(CacheConfig{Name: "t", Size: int64(g.size), LineSize: g.line, Assoc: g.assoc})
			if err != nil {
				return false
			}
			ref := newRefSetAssoc(g.size, g.line, g.assoc)
			for i := 0; i < int(n)+64; i++ {
				addr := uint64(rng.Intn(4 * g.size))
				got := c.lookup(addr, false)
				want := ref.access(addr)
				if got != want {
					return false
				}
				if !got {
					c.insert(addr, false)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAllocPagesUniqueAligned: randomized page placement never reuses
// a page and always aligns.
func TestAllocPagesUniqueAligned(t *testing.T) {
	clk := &sim.Clock{}
	cpu := sim.NewCPU(clk, sim.CPUConfig{MHz: 100})
	h, err := New(cpu, Config{
		Caches: []CacheConfig{{Name: "L1", Size: 8 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5}},
		DRAM:   DRAMConfig{LatencyNS: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		pages := h.AllocPages(64, 4096, rng)
		if len(pages) != 64 {
			t.Fatalf("got %d pages", len(pages))
		}
		for _, p := range pages {
			if p%4096 != 0 {
				t.Fatalf("unaligned page %x", p)
			}
			if seen[p] {
				t.Fatalf("page %x handed out twice", p)
			}
			seen[p] = true
		}
	}
	if h.AllocPages(0, 4096, rng) != nil {
		t.Error("zero pages should return nil")
	}
	if h.AllocPages(4, 0, rng) != nil {
		t.Error("zero page size should return nil")
	}
}

// TestPageChaseWalk exercises the scattered-page chase.
func TestPageChaseWalk(t *testing.T) {
	clk := &sim.Clock{}
	cpu := sim.NewCPU(clk, sim.CPUConfig{MHz: 100})
	h, err := New(cpu, Config{
		Caches: []CacheConfig{{Name: "L1", Size: 8 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5}},
		DRAM:   DRAMConfig{LatencyNS: 300},
		TLB:    TLBConfig{Entries: 8, PageSize: 4096, MissNS: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Few pages: fits TLB -> warm laps cost cache-hit time only.
	small := h.NewPageChase(h.AllocPages(4, 4096, rng))
	small.Walk(8) // warm
	before := clk.Now()
	small.Walk(100)
	smallPer := (clk.Now() - before).DivN(100)

	// Many pages: every access misses the 8-entry TLB.
	big := h.NewPageChase(h.AllocPages(64, 4096, rng))
	big.Walk(128)
	before = clk.Now()
	big.Walk(100)
	bigPer := (clk.Now() - before).DivN(100)

	if bigPer <= smallPer {
		t.Errorf("TLB-missing chase (%v) should cost more than fitting one (%v)", bigPer, smallPer)
	}
	if big.Length() != 64 {
		t.Errorf("Length = %d", big.Length())
	}
	empty := h.NewPageChase(nil)
	empty.Walk(10) // must not panic
}

// TestChaseVariantsSim: the dirty walk dirties lines (writebacks
// appear); the write walk stores.
func TestChaseVariantsSim(t *testing.T) {
	clk := &sim.Clock{}
	cpu := sim.NewCPU(clk, sim.CPUConfig{MHz: 100})
	h, err := New(cpu, Config{
		Caches: []CacheConfig{{Name: "L1", Size: 8 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5}},
		DRAM:   DRAMConfig{LatencyNS: 300, WritebackNS: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := h.Alloc(1 << 20)
	ch := h.NewChase(base, 1<<20, 64)
	ch.WalkDirty(2 * ch.Length())
	if st := h.Stats(); st.Writebacks == 0 {
		t.Error("dirty walk should produce writebacks")
	}
	// Dirty chase over memory costs more than clean.
	h2, _ := New(cpu, Config{
		Caches: []CacheConfig{{Name: "L1", Size: 8 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5}},
		DRAM:   DRAMConfig{LatencyNS: 300, WritebackNS: 100},
	})
	base2 := h2.Alloc(1 << 20)
	clean := h2.NewChase(base2, 1<<20, 64)
	clean.Walk(clean.Length())
	before := clk.Now()
	clean.Walk(clean.Length())
	cleanTime := clk.Now() - before

	dirty := h2.NewChase(base2, 1<<20, 64)
	dirty.WalkDirty(dirty.Length())
	before = clk.Now()
	dirty.WalkDirty(dirty.Length())
	dirtyTime := clk.Now() - before
	if dirtyTime <= cleanTime {
		t.Errorf("dirty walk (%v) should cost more than clean (%v)", dirtyTime, cleanTime)
	}

	wr := h2.NewChase(base2, 1<<20, 64)
	wr.WalkWrite(100)
}
