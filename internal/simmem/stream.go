package simmem

import (
	"repro/internal/ptime"
)

// chunkSize returns the streaming granularity: the first-level line
// size, or one 64-byte pseudo-line when no caches are configured.
func (h *Hierarchy) chunkSize() int64 {
	if len(h.caches) > 0 {
		return int64(h.caches[0].cfg.LineSize)
	}
	return 64
}

// streamChunkRead charges one chunk of a streaming read and returns
// nothing; time goes straight to the clock.
func (h *Hierarchy) streamChunkRead(addr uint64, words int64) {
	cost := h.tlbAccess(addr)
	var memTime ptime.Duration
	lvl := h.level(addr, false)
	switch {
	case lvl == 0:
		h.stats.Hits[0]++
	case lvl > 0:
		h.stats.Hits[lvl]++
		memTime = h.fill[lvl]
		cost += h.fillUpper(addr, lvl-1, false)
	default:
		h.stats.MemAccesses++
		memTime = h.memFill
		cost += h.fillUpper(addr, len(h.caches)-1, false)
	}
	issue := h.cpu.OpTime(words * int64(h.cfg.ReadOpsPerWord))
	cost += maxDur(issue, memTime)
	h.clk.Advance(cost)
}

// StreamRead models the unrolled read-and-sum loop over [addr,
// addr+bytes): sequential word loads with enough independent work that
// fills pipeline. Per chunk the cost is the larger of the instruction
// issue time and the line fill time (loads and fills overlap under
// sequential access), unlike Load which charges the full dependent-load
// latency.
func (h *Hierarchy) StreamRead(addr uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	chunk := h.chunkSize()
	wordsPerChunk := chunk / int64(h.cfg.WordSize)
	if wordsPerChunk < 1 {
		wordsPerChunk = 1
	}
	end := addr + uint64(bytes)
	for a := addr; a < end; a += uint64(chunk) {
		h.streamChunkRead(a, wordsPerChunk)
	}
}

// StreamWrite models the unrolled store loop over [addr, addr+bytes).
// With write-allocate caches every missing destination line is read
// before it is written (the paper: "the written cache line will
// typically be read before it is written"), so a pure write moves twice
// the reported bytes. NoWriteAllocate skips the fill and streams stores
// to memory.
func (h *Hierarchy) StreamWrite(addr uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	chunk := h.chunkSize()
	wordsPerChunk := chunk / int64(h.cfg.WordSize)
	if wordsPerChunk < 1 {
		wordsPerChunk = 1
	}
	end := addr + uint64(bytes)
	for a := addr; a < end; a += uint64(chunk) {
		h.streamChunkWrite(a, wordsPerChunk, false)
	}
}

func (h *Hierarchy) streamChunkWrite(addr uint64, words int64, hwBypass bool) {
	cost := h.tlbAccess(addr)
	var memTime ptime.Duration
	issueOps := int64(h.cfg.WriteOpsPerWord)
	if hwBypass || h.cfg.NoWriteAllocate {
		// Stores stream past the caches straight to memory.
		h.stats.MemAccesses++
		h.stats.Writebacks++
		memTime = h.memWB
	} else {
		lvl := h.level(addr, true)
		switch {
		case lvl == 0:
			h.stats.Hits[0]++
		case lvl > 0:
			h.stats.Hits[lvl]++
			memTime = h.fill[lvl]
			cost += h.fillUpper(addr, lvl-1, true)
		default:
			// Read-for-ownership fill from memory.
			h.stats.MemAccesses++
			memTime = h.memFill
			cost += h.fillUpper(addr, len(h.caches)-1, true)
		}
	}
	issue := h.cpu.OpTime(words * issueOps)
	cost += maxDur(issue, memTime)
	h.clk.Advance(cost)
}

// StreamCopy models bcopy: read the source, write the destination.
// Without hardware assistance a copy moves three memory streams (source
// read, destination read-for-ownership, destination writeback); with
// Config.HWCopy the destination stores bypass the cache (SPARC V9-style
// block moves) and only two streams move.
func (h *Hierarchy) StreamCopy(src, dst uint64, bytes int64) {
	h.StreamCopyMode(src, dst, bytes, h.cfg.HWCopy)
}

// StreamCopyMode is StreamCopy with an explicit hardware-assist choice,
// so a backend can model a hardware-assisted libc bcopy next to a
// plain hand-unrolled copy loop on the same machine (the Sun libc case
// in Table 2).
func (h *Hierarchy) StreamCopyMode(src, dst uint64, bytes int64, hwCopy bool) {
	if bytes <= 0 {
		return
	}
	chunk := h.chunkSize()
	wordsPerChunk := chunk / int64(h.cfg.WordSize)
	if wordsPerChunk < 1 {
		wordsPerChunk = 1
	}
	for off := int64(0); off < bytes; off += chunk {
		// Source side: same as a streaming read but with the copy
		// loop's instruction mix charged once for the pair below.
		sa := src + uint64(off)
		da := dst + uint64(off)

		cost := h.tlbAccess(sa)
		var memTime ptime.Duration
		lvl := h.level(sa, false)
		switch {
		case lvl == 0:
			h.stats.Hits[0]++
		case lvl > 0:
			h.stats.Hits[lvl]++
			memTime = h.fill[lvl]
			cost += h.fillUpper(sa, lvl-1, false)
		default:
			h.stats.MemAccesses++
			memTime = h.memFill
			cost += h.fillUpper(sa, len(h.caches)-1, false)
		}

		// Destination side.
		cost += h.tlbAccess(da)
		if hwCopy {
			h.stats.MemAccesses++
			h.stats.Writebacks++
			memTime += h.memWB
		} else {
			dlvl := h.level(da, true)
			switch {
			case dlvl == 0:
				h.stats.Hits[0]++
			case dlvl > 0:
				h.stats.Hits[dlvl]++
				memTime += h.fill[dlvl]
				cost += h.fillUpper(da, dlvl-1, true)
			default:
				h.stats.MemAccesses++
				memTime += h.memFill
				cost += h.fillUpper(da, len(h.caches)-1, true)
			}
		}

		issue := h.cpu.OpTime(wordsPerChunk * int64(h.cfg.CopyOpsPerWord))
		cost += maxDur(issue, memTime)
		h.clk.Advance(cost)
	}
}

// StreamKernel models one pass of a McCalpin STREAM kernel (§7: "We
// will probably incorporate part or all of this benchmark into
// lmbench"): every source stream is read, the destination stream is
// written with write-allocate semantics, and opsPerWord arithmetic
// operations issue per destination word. Copy has one source and 0
// extra ops, Scale one source and a multiply, Add two sources and an
// add, Triad two sources and a fused multiply-add.
func (h *Hierarchy) StreamKernel(dst uint64, srcs []uint64, bytes int64, opsPerWord int) {
	if bytes <= 0 {
		return
	}
	if opsPerWord < 1 {
		opsPerWord = 1
	}
	chunk := h.chunkSize()
	wordsPerChunk := chunk / int64(h.cfg.WordSize)
	if wordsPerChunk < 1 {
		wordsPerChunk = 1
	}
	for off := int64(0); off < bytes; off += chunk {
		var cost, memTime ptime.Duration
		for _, src := range srcs {
			sa := src + uint64(off)
			cost += h.tlbAccess(sa)
			lvl := h.level(sa, false)
			switch {
			case lvl == 0:
				h.stats.Hits[0]++
			case lvl > 0:
				h.stats.Hits[lvl]++
				memTime += h.fill[lvl]
				cost += h.fillUpper(sa, lvl-1, false)
			default:
				h.stats.MemAccesses++
				memTime += h.memFill
				cost += h.fillUpper(sa, len(h.caches)-1, false)
			}
		}
		da := dst + uint64(off)
		cost += h.tlbAccess(da)
		dlvl := h.level(da, true)
		switch {
		case dlvl == 0:
			h.stats.Hits[0]++
		case dlvl > 0:
			h.stats.Hits[dlvl]++
			memTime += h.fill[dlvl]
			cost += h.fillUpper(da, dlvl-1, true)
		default:
			h.stats.MemAccesses++
			memTime += h.memFill
			cost += h.fillUpper(da, len(h.caches)-1, true)
		}
		issue := h.cpu.OpTime(wordsPerChunk * int64(opsPerWord))
		cost += maxDur(issue, memTime)
		h.clk.Advance(cost)
	}
}

func maxDur(a, b ptime.Duration) ptime.Duration {
	if a > b {
		return a
	}
	return b
}

// Chase is the §6.2 pointer-chase state: a circular list of addresses
// base, base+stride, ... wrapping at size, walked with dependent loads.
//
//	mov r4,(r4)   # C code: p = *p;
type Chase struct {
	h      *Hierarchy
	base   uint64
	size   int64
	stride int64
	off    int64
}

// NewChase prepares a pointer chase over [base, base+size) with the
// given stride. Stride and size are clamped to at least one word.
func (h *Hierarchy) NewChase(base uint64, size, stride int64) *Chase {
	if stride < int64(h.cfg.WordSize) {
		stride = int64(h.cfg.WordSize)
	}
	if size < stride {
		size = stride
	}
	return &Chase{h: h, base: base, size: size, stride: stride}
}

// Walk performs n dependent loads, continuing from where the previous
// call stopped (the list wraps).
func (c *Chase) Walk(n int64) {
	for i := int64(0); i < n; i++ {
		c.h.Load(c.base + uint64(c.off))
		c.off += c.stride
		if c.off >= c.size {
			c.off -= c.size
		}
	}
}

// Length returns the number of elements in the circular list.
func (c *Chase) Length() int64 { return (c.size + c.stride - 1) / c.stride }

// WalkDirty performs n dependent loads, storing back to each element
// after loading it, so every line the walk evicts is modified. This is
// the §7 "dirty-read latency" workload: reads whose victims carry
// write-back costs.
func (c *Chase) WalkDirty(n int64) {
	for i := int64(0); i < n; i++ {
		addr := c.base + uint64(c.off)
		c.h.Load(addr)
		c.h.Store(addr)
		c.off += c.stride
		if c.off >= c.size {
			c.off -= c.size
		}
	}
}

// WalkWrite performs n strided stores (the §7 "write latency"
// workload); addresses come from arithmetic, not loaded pointers, as a
// store chain cannot be made dependent.
func (c *Chase) WalkWrite(n int64) {
	for i := int64(0); i < n; i++ {
		c.h.Store(c.base + uint64(c.off))
		c.off += c.stride
		if c.off >= c.size {
			c.off -= c.size
		}
	}
}

// PageChase walks the first word of each page in a scattered page
// list — the §7 TLB-measurement workload: one line per page keeps the
// cache footprint tiny while the page count sweeps past the TLB size.
type PageChase struct {
	h     *Hierarchy
	pages []uint64
	idx   int
}

// NewPageChase builds a chase over the given pages.
func (h *Hierarchy) NewPageChase(pages []uint64) *PageChase {
	return &PageChase{h: h, pages: pages}
}

// Walk performs n loads, one per page, wrapping around the list.
func (p *PageChase) Walk(n int64) {
	if len(p.pages) == 0 {
		return
	}
	for i := int64(0); i < n; i++ {
		p.h.Load(p.pages[p.idx])
		p.idx++
		if p.idx == len(p.pages) {
			p.idx = 0
		}
	}
}

// Length returns the page count.
func (p *PageChase) Length() int64 { return int64(len(p.pages)) }
