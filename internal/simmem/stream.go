package simmem

import (
	"repro/internal/ptime"
)

// The streaming and pointer-chase loops below are the simulator's hot
// paths: one call walks megabytes of simulated memory. They are written
// around two exact-equivalence optimizations (see DESIGN.md
// "Performance engineering"):
//
//   - Batched clock charging: per-access costs accumulate in a local
//     ptime.Duration and the clock advances once per call. The virtual
//     clock is an exact integer picosecond counter and no code observes
//     it mid-call, so the batched sum is bit-identical to per-access
//     advances.
//
//   - Page-granular TLB probing: a sequential stream re-probes the same
//     TLB entry for every chunk of a page. Immediately re-probing the
//     most recently touched entry is a guaranteed hit whose LRU
//     move-to-front is a no-op, so all but the first probe per page are
//     skipped. With several interleaved streams the skip is applied
//     only when Hierarchy.tlbHoistStreams proves no stream's entry can
//     be evicted mid-page (otherwise every chunk probes, as before).

// chunkSize returns the streaming granularity: the first-level line
// size, or one 64-byte pseudo-line when no caches are configured.
func (h *Hierarchy) chunkSize() int64 {
	if len(h.caches) > 0 {
		return int64(h.caches[0].cfg.LineSize)
	}
	return 64
}

// sideReadCost charges the cache-side work of streaming one chunk's
// read, excluding the TLB probe and the issue/fill overlap; memTime is
// the line-fill component the caller folds into maxDur(issue, ...).
func (h *Hierarchy) sideReadCost(addr uint64) (cost, memTime ptime.Duration) {
	lvl := h.level(addr, false)
	switch {
	case lvl == 0:
		h.stats.Hits[0]++
	case lvl > 0:
		h.stats.Hits[lvl]++
		memTime = h.fill[lvl]
		cost = h.fillUpper(addr, lvl-1, false)
	default:
		h.stats.MemAccesses++
		memTime = h.memFill
		cost = h.fillUpper(addr, len(h.caches)-1, false)
	}
	return cost, memTime
}

// sideWriteCost is sideReadCost for a write-allocate store stream.
func (h *Hierarchy) sideWriteCost(addr uint64) (cost, memTime ptime.Duration) {
	lvl := h.level(addr, true)
	switch {
	case lvl == 0:
		h.stats.Hits[0]++
	case lvl > 0:
		h.stats.Hits[lvl]++
		memTime = h.fill[lvl]
		cost = h.fillUpper(addr, lvl-1, true)
	default:
		// Read-for-ownership fill from memory.
		h.stats.MemAccesses++
		memTime = h.memFill
		cost = h.fillUpper(addr, len(h.caches)-1, true)
	}
	return cost, memTime
}

// StreamRead models the unrolled read-and-sum loop over [addr,
// addr+bytes): sequential word loads with enough independent work that
// fills pipeline. Per chunk the cost is the larger of the instruction
// issue time and the line fill time (loads and fills overlap under
// sequential access), unlike Load which charges the full dependent-load
// latency.
func (h *Hierarchy) StreamRead(addr uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	end := addr + uint64(bytes)
	page := uint64(h.PageSize())
	var total ptime.Duration
	lastPage, havePage := uint64(0), false
	for a := addr; a < end; a += uint64(h.chunk) {
		// Single stream: the previous probe of this page is necessarily
		// the TLB's most recent touch, so the skip is unconditional.
		if p := a / page; !havePage || p != lastPage {
			total += h.tlbAccess(a)
			lastPage, havePage = p, true
		}
		cost, memTime := h.sideReadCost(a)
		total += cost + maxDur(h.readIssue, memTime)
	}
	h.clk.Advance(total)
}

// StreamWrite models the unrolled store loop over [addr, addr+bytes).
// With write-allocate caches every missing destination line is read
// before it is written (the paper: "the written cache line will
// typically be read before it is written"), so a pure write moves twice
// the reported bytes. NoWriteAllocate skips the fill and streams stores
// to memory.
func (h *Hierarchy) StreamWrite(addr uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	end := addr + uint64(bytes)
	page := uint64(h.PageSize())
	bypass := h.cfg.NoWriteAllocate
	var total ptime.Duration
	lastPage, havePage := uint64(0), false
	for a := addr; a < end; a += uint64(h.chunk) {
		if p := a / page; !havePage || p != lastPage {
			total += h.tlbAccess(a)
			lastPage, havePage = p, true
		}
		var memTime ptime.Duration
		if bypass {
			// Stores stream past the caches straight to memory.
			h.stats.MemAccesses++
			h.stats.Writebacks++
			memTime = h.memWB
		} else {
			var cost ptime.Duration
			cost, memTime = h.sideWriteCost(a)
			total += cost
		}
		total += maxDur(h.writeIssue, memTime)
	}
	h.clk.Advance(total)
}

// StreamCopy models bcopy: read the source, write the destination.
// Without hardware assistance a copy moves three memory streams (source
// read, destination read-for-ownership, destination writeback); with
// Config.HWCopy the destination stores bypass the cache (SPARC V9-style
// block moves) and only two streams move.
func (h *Hierarchy) StreamCopy(src, dst uint64, bytes int64) {
	h.StreamCopyMode(src, dst, bytes, h.cfg.HWCopy)
}

// StreamCopyMode is StreamCopy with an explicit hardware-assist choice,
// so a backend can model a hardware-assisted libc bcopy next to a
// plain hand-unrolled copy loop on the same machine (the Sun libc case
// in Table 2).
func (h *Hierarchy) StreamCopyMode(src, dst uint64, bytes int64, hwCopy bool) {
	if bytes <= 0 {
		return
	}
	page := uint64(h.PageSize())
	hoist := h.tlbHoistStreams >= 2
	var total ptime.Duration
	var lastSP, lastDP uint64
	haveSP, haveDP := false, false
	for off := int64(0); off < bytes; off += h.chunk {
		sa := src + uint64(off)
		da := dst + uint64(off)

		// Source side: same as a streaming read but with the copy
		// loop's instruction mix charged once for the pair below.
		var cost ptime.Duration
		if p := sa / page; !hoist || !haveSP || p != lastSP {
			cost += h.tlbAccess(sa)
			lastSP, haveSP = p, true
		}
		c, memTime := h.sideReadCost(sa)
		cost += c

		// Destination side.
		if p := da / page; !hoist || !haveDP || p != lastDP {
			cost += h.tlbAccess(da)
			lastDP, haveDP = p, true
		}
		if hwCopy {
			h.stats.MemAccesses++
			h.stats.Writebacks++
			memTime += h.memWB
		} else {
			dc, dmem := h.sideWriteCost(da)
			cost += dc
			memTime += dmem
		}

		total += cost + maxDur(h.copyIssue, memTime)
	}
	h.clk.Advance(total)
}

// StreamKernel models one pass of a McCalpin STREAM kernel (§7: "We
// will probably incorporate part or all of this benchmark into
// lmbench"): every source stream is read, the destination stream is
// written with write-allocate semantics, and opsPerWord arithmetic
// operations issue per destination word. Copy has one source and 0
// extra ops, Scale one source and a multiply, Add two sources and an
// add, Triad two sources and a fused multiply-add.
func (h *Hierarchy) StreamKernel(dst uint64, srcs []uint64, bytes int64, opsPerWord int) {
	if bytes <= 0 {
		return
	}
	if opsPerWord < 1 {
		opsPerWord = 1
	}
	issue := h.cpu.OpTime(h.chunkWords * int64(opsPerWord))
	page := uint64(h.PageSize())
	hoist := h.tlbHoistStreams >= len(srcs)+1
	lastPage := make([]uint64, len(srcs)+1)
	havePage := make([]bool, len(srcs)+1)
	var total ptime.Duration
	for off := int64(0); off < bytes; off += h.chunk {
		var cost, memTime ptime.Duration
		for i, src := range srcs {
			sa := src + uint64(off)
			if p := sa / page; !hoist || !havePage[i] || p != lastPage[i] {
				cost += h.tlbAccess(sa)
				lastPage[i], havePage[i] = p, true
			}
			c, mem := h.sideReadCost(sa)
			cost += c
			memTime += mem
		}
		da := dst + uint64(off)
		di := len(srcs)
		if p := da / page; !hoist || !havePage[di] || p != lastPage[di] {
			cost += h.tlbAccess(da)
			lastPage[di], havePage[di] = p, true
		}
		dc, dmem := h.sideWriteCost(da)
		cost += dc
		memTime += dmem
		total += cost + maxDur(issue, memTime)
	}
	h.clk.Advance(total)
}

func maxDur(a, b ptime.Duration) ptime.Duration {
	if a > b {
		return a
	}
	return b
}

// Chase is the §6.2 pointer-chase state: a circular list of addresses
// base, base+stride, ... wrapping at size, walked with dependent loads.
//
//	mov r4,(r4)   # C code: p = *p;
type Chase struct {
	h      *Hierarchy
	base   uint64
	size   int64
	stride int64
	off    int64
}

// NewChase prepares a pointer chase over [base, base+size) with the
// given stride. Stride and size are clamped to at least one word.
func (h *Hierarchy) NewChase(base uint64, size, stride int64) *Chase {
	if stride < int64(h.cfg.WordSize) {
		stride = int64(h.cfg.WordSize)
	}
	if size < stride {
		size = stride
	}
	return &Chase{h: h, base: base, size: size, stride: stride}
}

// Walk performs n dependent loads, continuing from where the previous
// call stopped (the list wraps). The per-load costs accumulate locally
// and charge the clock once.
func (c *Chase) Walk(n int64) {
	h := c.h
	var total ptime.Duration
	for i := int64(0); i < n; i++ {
		total += h.loadCost(c.base + uint64(c.off))
		c.off += c.stride
		if c.off >= c.size {
			c.off -= c.size
		}
	}
	h.clk.Advance(total)
}

// Length returns the number of elements in the circular list.
func (c *Chase) Length() int64 { return (c.size + c.stride - 1) / c.stride }

// WalkDirty performs n dependent loads, storing back to each element
// after loading it, so every line the walk evicts is modified. This is
// the §7 "dirty-read latency" workload: reads whose victims carry
// write-back costs.
func (c *Chase) WalkDirty(n int64) {
	h := c.h
	var total ptime.Duration
	for i := int64(0); i < n; i++ {
		addr := c.base + uint64(c.off)
		total += h.loadCost(addr)
		total += h.storeCost(addr)
		c.off += c.stride
		if c.off >= c.size {
			c.off -= c.size
		}
	}
	h.clk.Advance(total)
}

// WalkWrite performs n strided stores (the §7 "write latency"
// workload); addresses come from arithmetic, not loaded pointers, as a
// store chain cannot be made dependent.
func (c *Chase) WalkWrite(n int64) {
	h := c.h
	var total ptime.Duration
	for i := int64(0); i < n; i++ {
		total += h.storeCost(c.base + uint64(c.off))
		c.off += c.stride
		if c.off >= c.size {
			c.off -= c.size
		}
	}
	h.clk.Advance(total)
}

// PageChase walks the first word of each page in a scattered page
// list — the §7 TLB-measurement workload: one line per page keeps the
// cache footprint tiny while the page count sweeps past the TLB size.
type PageChase struct {
	h     *Hierarchy
	pages []uint64
	idx   int
}

// NewPageChase builds a chase over the given pages.
func (h *Hierarchy) NewPageChase(pages []uint64) *PageChase {
	return &PageChase{h: h, pages: pages}
}

// Walk performs n loads, one per page, wrapping around the list.
func (p *PageChase) Walk(n int64) {
	if len(p.pages) == 0 {
		return
	}
	h := p.h
	var total ptime.Duration
	for i := int64(0); i < n; i++ {
		total += h.loadCost(p.pages[p.idx])
		p.idx++
		if p.idx == len(p.pages) {
			p.idx = 0
		}
	}
	h.clk.Advance(total)
}

// Length returns the page count.
func (p *PageChase) Length() int64 { return int64(len(p.pages)) }
