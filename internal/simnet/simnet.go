// Package simnet models the networking stack the paper measures in
// §5.2 (Table 3: loopback TCP bandwidth), §5.2 (Table 4: remote TCP by
// medium), §6.7 (Tables 12-15: TCP/UDP/RPC latency, connection cost)
// and Table 14 (remote latencies).
//
// The central structural claim reproduced here: "It is not widely known
// that the majority of the TCP cost is in the bcopy, the checksum, and
// the network interface driver. The checksum and the driver may be
// safely eliminated in the loopback case and if the costs have been
// eliminated, then TCP should be just as fast as pipes." A TCP transfer
// is therefore modeled as the pipe path (two syscalls, two bcopys
// through the memory hierarchy, a context switch) plus per-byte
// checksum work and per-packet driver work, both skipped when the
// profile sets LoopbackOptimized (Solaris, HP-UX in Table 3).
package simnet

import (
	"errors"

	"repro/internal/ptime"
	"repro/internal/simos"
)

// Config holds the stack cost parameters for one machine profile.
type Config struct {
	// TCPStackUS is the per-message TCP/IP protocol processing cost
	// for one direction (header construction, state machine), small
	// messages.
	TCPStackUS float64
	// UDPStackUS is the same for UDP. The paper's tables show UDP
	// latency above TCP latency on most systems, so this is often the
	// larger number.
	UDPStackUS float64
	// ChecksumMBs is the software checksumming rate; 0 means checksums
	// are free (hardware assist, e.g. SGI's Hippi interface).
	ChecksumMBs float64
	// DriverUS is the network-interface driver cost per packet.
	DriverUS float64
	// LoopbackOptimized marks stacks that skip checksum and driver on
	// loopback.
	LoopbackOptimized bool
	// RPCExtraUS is the extra round-trip cost added by the RPC layer
	// over TCP ("the RPC layer frequently adds hundreds of
	// microseconds").
	RPCExtraUS float64
	// RPCExtraUDPUS is the RPC layer's extra cost over UDP; defaults
	// to RPCExtraUS.
	RPCExtraUDPUS float64
	// ConnectExtraUS is connection-establishment work beyond the
	// handshake packets (port lookup, PCB setup).
	ConnectExtraUS float64
	// MTU is the packet size for driver accounting (default 1500).
	MTU int
	// SocketBufBytes is the socket buffer size for bandwidth transfers
	// (default 1M: "the send and receive socket buffers are enlarged
	// to 1M" and "setting the transfer size equal to the socket buffer
	// size produces the greatest throughput").
	SocketBufBytes int
}

func (c Config) withDefaults() Config {
	if c.TCPStackUS <= 0 {
		c.TCPStackUS = 50
	}
	if c.UDPStackUS <= 0 {
		c.UDPStackUS = c.TCPStackUS
	}
	if c.RPCExtraUDPUS <= 0 {
		c.RPCExtraUDPUS = c.RPCExtraUS
	}
	if c.MTU <= 0 {
		c.MTU = 1500
	}
	if c.SocketBufBytes <= 0 {
		c.SocketBufBytes = 1 << 20
	}
	return c
}

// Medium is a physical network for the remote experiments.
type Medium struct {
	// Name is e.g. "10baseT", "100baseT", "fddi", "hippi".
	Name string
	// MBs is the raw wire bandwidth in MB/s.
	MBs float64
	// LatencyUS is the fixed one-way wire+PHY latency for a small
	// packet (the paper: ~65us each way on 10Mbit ethernet; 13us for
	// 100baseT/FDDI; <10us for Hippi).
	LatencyUS float64
	// PacketBytes is the medium's maximum packet size (FDDI packets
	// are "almost three times larger" than ethernet's).
	PacketBytes int
}

// Standard media with the paper's round numbers.
var (
	Ether10  = Medium{Name: "10baseT", MBs: 1.25, LatencyUS: 65, PacketBytes: 1500}
	Ether100 = Medium{Name: "100baseT", MBs: 12.5, LatencyUS: 13, PacketBytes: 1500}
	FDDI     = Medium{Name: "fddi", MBs: 12.5, LatencyUS: 13, PacketBytes: 4352}
	Hippi    = Medium{Name: "hippi", MBs: 100, LatencyUS: 8, PacketBytes: 65280}
)

// Net is the simulated network stack of one machine.
type Net struct {
	o   *simos.OS
	cfg Config

	kbuf    uint64 // socket buffer
	scratch uint64 // small-message scratch

	tcpStack    ptime.Duration
	udpStack    ptime.Duration
	driver      ptime.Duration
	rpcExtra    ptime.Duration
	rpcExtraUDP ptime.Duration
	connExtra   ptime.Duration
}

// New builds a stack over the given OS.
func New(o *simos.OS, cfg Config) *Net {
	cfg = cfg.withDefaults()
	return &Net{
		o:           o,
		cfg:         cfg,
		kbuf:        o.Mem().Alloc(int64(cfg.SocketBufBytes)),
		scratch:     o.Mem().Alloc(4096),
		tcpStack:    ptime.FromUS(cfg.TCPStackUS),
		udpStack:    ptime.FromUS(cfg.UDPStackUS),
		driver:      ptime.FromUS(cfg.DriverUS),
		rpcExtra:    ptime.FromUS(cfg.RPCExtraUS),
		rpcExtraUDP: ptime.FromUS(cfg.RPCExtraUDPUS),
		connExtra:   ptime.FromUS(cfg.ConnectExtraUS),
	}
}

// Config returns the defaulted configuration.
func (n *Net) Config() Config { return n.cfg }

func (n *Net) advance(d ptime.Duration) { n.o.Mem().ClockHandle().Advance(d) }

// checksumTime returns the software checksum cost for nbytes, zero when
// hardware assists or loopback optimization applies.
func (n *Net) checksumTime(nbytes int64, loopback bool) ptime.Duration {
	if n.cfg.ChecksumMBs <= 0 {
		return 0
	}
	if loopback && n.cfg.LoopbackOptimized {
		return 0
	}
	return ptime.FromNS(float64(nbytes) / (n.cfg.ChecksumMBs * 1e6) * 1e9)
}

// driverTime returns the per-packet driver cost for nbytes split into
// packets of the given size; zero on optimized loopback.
func (n *Net) driverTime(nbytes int64, pktSize int, loopback bool) ptime.Duration {
	if loopback && n.cfg.LoopbackOptimized {
		return 0
	}
	if pktSize <= 0 {
		pktSize = n.cfg.MTU
	}
	pkts := (nbytes + int64(pktSize) - 1) / int64(pktSize)
	return n.driver.Mul(pkts)
}

// TCPSendLocal charges one loopback TCP transfer of nbytes from the
// sender's buffer at src to the receiver's buffer at dst, including the
// receive side: write syscall, copy to socket buffer, checksum, driver,
// context switch, read syscall, checksum, copy out.
func (n *Net) TCPSendLocal(src, dst uint64, nbytes int64) error {
	return n.sendLocal(src, dst, nbytes, n.tcpStack)
}

// UDPSendLocal is TCPSendLocal over the UDP path.
func (n *Net) UDPSendLocal(src, dst uint64, nbytes int64) error {
	return n.sendLocal(src, dst, nbytes, n.udpStack)
}

func (n *Net) sendLocal(src, dst uint64, nbytes int64, stack ptime.Duration) error {
	if nbytes <= 0 {
		return errors.New("simnet: transfer needs positive size")
	}
	mem := n.o.Mem()
	buf := int64(n.cfg.SocketBufBytes)
	for off := int64(0); off < nbytes; off += buf {
		chunk := buf
		if rem := nbytes - off; rem < chunk {
			chunk = rem
		}
		// Sender.
		n.o.Syscall()
		n.advance(stack)
		mem.StreamCopy(src+uint64(off), n.kbuf, chunk)
		n.advance(n.checksumTime(chunk, true))
		n.advance(n.driverTime(chunk, 0, true))
		n.o.ContextSwitch()
		// Receiver.
		n.o.Syscall()
		n.advance(stack)
		n.advance(n.checksumTime(chunk, true))
		mem.StreamCopy(n.kbuf, dst+uint64(off), chunk)
	}
	return nil
}

// onewaySmall charges one direction of a small (one-word) loopback
// message: syscall, stack, driver, context switch to the peer, its read
// syscall. Checksum on a word is negligible and omitted.
func (n *Net) onewaySmall(stack ptime.Duration) {
	n.o.Syscall()
	n.advance(stack)
	n.advance(n.driverTime(64, 0, true))
	n.o.ContextSwitch()
	n.o.Syscall()
	n.advance(stack)
}

// TCPRoundTripLocal charges one Table-12 round trip: "The two processes
// then exchange a word between them in a loop."
func (n *Net) TCPRoundTripLocal() {
	n.onewaySmall(n.tcpStack)
	n.onewaySmall(n.tcpStack)
}

// UDPRoundTripLocal charges one Table-13 round trip.
func (n *Net) UDPRoundTripLocal() {
	n.onewaySmall(n.udpStack)
	n.onewaySmall(n.udpStack)
}

// RPCTCPRoundTripLocal charges a Table-12 RPC/TCP round trip: the TCP
// round trip plus the RPC layer's connection management, XDR dispatch
// and procedure-call abstraction ("There is no justification for the
// extra cost; it is simply an expensive implementation").
func (n *Net) RPCTCPRoundTripLocal() {
	n.TCPRoundTripLocal()
	n.advance(n.rpcExtra)
}

// RPCUDPRoundTripLocal charges a Table-13 RPC/UDP round trip.
func (n *Net) RPCUDPRoundTripLocal() {
	n.UDPRoundTripLocal()
	n.advance(n.rpcExtraUDP)
}

// TCPConnectLocal charges one Table-15 connection: two of the three
// handshake packets are on the measured path ("The time measured will
// include two of the three packets that make up the three way TCP
// handshake"), plus PCB/port setup, plus the close.
func (n *Net) TCPConnectLocal() {
	n.advance(n.connExtra)
	n.onewaySmall(n.tcpStack) // SYN
	n.onewaySmall(n.tcpStack) // SYN|ACK
	n.o.Syscall()             // close
}

// RoundTripRemote charges a Table-14 round trip over medium m: the
// local software path on both hosts plus the wire time each way.
// Loopback eliminations do not apply on a real wire.
func (n *Net) RoundTripRemote(m Medium, udp bool) {
	stack := n.tcpStack
	if udp {
		stack = n.udpStack
	}
	const word = 64
	wire := ptime.FromUS(m.LatencyUS)
	for i := 0; i < 2; i++ { // two directions
		n.o.Syscall()
		n.advance(stack)
		n.advance(n.checksumTime(word, false))
		n.advance(n.driverTime(word, m.PacketBytes, false))
		n.advance(wire)
		// Remote host's receive+send processing.
		n.o.Syscall()
		n.advance(stack)
	}
}

// TCPSendRemote charges one TCP transfer of nbytes over medium m. Wire
// transmission and host processing are pipelined, so the charge is the
// maximum of the wire time and the software time, plus one wire
// latency.
func (n *Net) TCPSendRemote(m Medium, src uint64, nbytes int64) error {
	if nbytes <= 0 {
		return errors.New("simnet: transfer needs positive size")
	}
	mem := n.o.Mem()
	clk := mem.ClockHandle()

	// Software side: measure its cost by running it against the clock,
	// then roll in the wire overlap by topping up to the wire time.
	start := clk.Now()
	buf := int64(n.cfg.SocketBufBytes)
	for off := int64(0); off < nbytes; off += buf {
		chunk := buf
		if rem := nbytes - off; rem < chunk {
			chunk = rem
		}
		n.o.Syscall()
		n.advance(n.tcpStack)
		mem.StreamCopy(src+uint64(off), n.kbuf, chunk)
		n.advance(n.checksumTime(chunk, false))
		n.advance(n.driverTime(chunk, m.PacketBytes, false))
	}
	software := clk.Now() - start
	wire := ptime.FromNS(float64(nbytes) / (m.MBs * 1e6) * 1e9)
	if wire > software {
		clk.Advance(wire - software)
	}
	clk.Advance(ptime.FromUS(m.LatencyUS))
	return nil
}
