package simnet

import (
	"testing"

	"repro/internal/ptime"
	"repro/internal/sim"
	"repro/internal/simmem"
	"repro/internal/simos"
)

type rig struct {
	clk *sim.Clock
	os  *simos.OS
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &sim.Clock{}
	cpu := sim.NewCPU(clk, sim.CPUConfig{MHz: 100, IssueWidth: 4})
	mem, err := simmem.New(cpu, simmem.Config{
		Caches: []simmem.CacheConfig{
			{Name: "L1", Size: 8 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5, FillNS: 5},
			{Name: "L2", Size: 256 << 10, LineSize: 32, Assoc: 4, LatencyNS: 50, FillNS: 40},
		},
		DRAM: simmem.DRAMConfig{LatencyNS: 300, FillNS: 100, WritebackNS: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := simos.New(cpu, mem, simos.Config{SyscallNS: 3000, CtxSwitchNS: 6000})
	return &rig{clk: clk, os: o}
}

func (r *rig) net(cfg Config) *Net { return New(r.os, cfg) }

func baseCfg() Config {
	return Config{
		TCPStackUS:     40,
		UDPStackUS:     60,
		ChecksumMBs:    100,
		DriverUS:       20,
		RPCExtraUS:     200,
		ConnectExtraUS: 100,
	}
}

// TestLoopbackOptimizationClosesTCPPipeGap reproduces the Table 3
// structural claim: with checksum+driver eliminated on loopback, TCP
// bandwidth approaches pipe bandwidth; without, it is measurably lower.
func TestLoopbackOptimizationClosesTCPPipeGap(t *testing.T) {
	const n = 4 << 20
	transferTime := func(optimized bool) ptime.Duration {
		r := newRig(t)
		cfg := baseCfg()
		cfg.LoopbackOptimized = optimized
		nt := r.net(cfg)
		mem := r.os.Mem()
		src := mem.Alloc(n)
		dst := mem.Alloc(n)
		before := r.clk.Now()
		if err := nt.TCPSendLocal(src, dst, n); err != nil {
			t.Fatal(err)
		}
		return r.clk.Now() - before
	}
	pipeTime := func() ptime.Duration {
		// Same 1M buffering as the TCP path so cache residence of the
		// kernel buffer is apples-to-apples.
		r := newRig(t)
		mem := r.os.Mem()
		o := simos.New(mem.CPU(), mem, simos.Config{
			SyscallNS: 3000, CtxSwitchNS: 6000, PipeBufBytes: 1 << 20,
		})
		p := o.NewPipe()
		src := mem.Alloc(n)
		dst := mem.Alloc(n)
		before := r.clk.Now()
		if err := p.Transfer(src, dst, n); err != nil {
			t.Fatal(err)
		}
		return r.clk.Now() - before
	}

	plain := transferTime(false)
	opt := transferTime(true)
	pipe := pipeTime()

	if opt >= plain {
		t.Errorf("optimized loopback (%v) should beat plain (%v)", opt, plain)
	}
	// Optimized TCP within 25% of the pipe; unoptimized at least 30%
	// slower than the pipe (checksum at 100MB/s dominates).
	if ratio := float64(opt) / float64(pipe); ratio > 1.25 {
		t.Errorf("optimized TCP/pipe = %.2f, want <= 1.25", ratio)
	}
	if ratio := float64(plain) / float64(pipe); ratio < 1.3 {
		t.Errorf("plain TCP/pipe = %.2f, want >= 1.3", ratio)
	}
}

func TestSendValidation(t *testing.T) {
	r := newRig(t)
	nt := r.net(baseCfg())
	if err := nt.TCPSendLocal(0, 0, 0); err == nil {
		t.Error("zero-byte TCP send should error")
	}
	if err := nt.UDPSendLocal(0, 0, -1); err == nil {
		t.Error("negative UDP send should error")
	}
	if err := nt.TCPSendRemote(Ether10, 0, 0); err == nil {
		t.Error("zero-byte remote send should error")
	}
}

func TestRoundTripOrdering(t *testing.T) {
	measure := func(f func(*Net)) ptime.Duration {
		r := newRig(t)
		nt := r.net(baseCfg())
		before := r.clk.Now()
		f(nt)
		return r.clk.Now() - before
	}
	tcp := measure(func(n *Net) { n.TCPRoundTripLocal() })
	udp := measure(func(n *Net) { n.UDPRoundTripLocal() })
	rpcTCP := measure(func(n *Net) { n.RPCTCPRoundTripLocal() })
	rpcUDP := measure(func(n *Net) { n.RPCUDPRoundTripLocal() })

	if udp <= tcp {
		t.Errorf("UDP RTT (%v) should exceed TCP RTT (%v) with the larger stack cost", udp, tcp)
	}
	if rpcTCP != tcp+200*ptime.Microsecond {
		t.Errorf("RPC/TCP = %v, want TCP + 200us = %v", rpcTCP, tcp+200*ptime.Microsecond)
	}
	if rpcUDP != udp+200*ptime.Microsecond {
		t.Errorf("RPC/UDP = %v, want UDP + 200us", rpcUDP)
	}
	// Structure of the TCP RTT: 4 syscalls (12us) + 4 stack (160us) +
	// 2 ctx (12us) + 2 driver (40us) = 224us.
	want := 224 * ptime.Microsecond
	if tcp != want {
		t.Errorf("TCP RTT = %v, want %v", tcp, want)
	}
}

func TestConnectCost(t *testing.T) {
	r := newRig(t)
	nt := r.net(baseCfg())
	before := r.clk.Now()
	nt.TCPConnectLocal()
	got := r.clk.Now() - before
	// Two handshake one-ways (112us each: 2 syscalls + 2 stack halves +
	// driver + ctx switch) + setup extra (100us) + close syscall (3us).
	want := 327 * ptime.Microsecond
	if got != want {
		t.Errorf("connect = %v, want %v", got, want)
	}
}

func TestRemoteLatencyOrderedByMedium(t *testing.T) {
	rtt := func(m Medium) ptime.Duration {
		r := newRig(t)
		nt := r.net(baseCfg())
		before := r.clk.Now()
		nt.RoundTripRemote(m, false)
		return r.clk.Now() - before
	}
	e10 := rtt(Ether10)
	e100 := rtt(Ether100)
	hip := rtt(Hippi)
	if !(hip < e100 && e100 < e10) {
		t.Errorf("remote RTTs out of order: hippi %v, 100baseT %v, 10baseT %v", hip, e100, e10)
	}
	// The 10baseT round trip includes 130us of wire time.
	if e10-e100 < 100*ptime.Microsecond {
		t.Errorf("10baseT should carry ~104us more wire time than 100baseT: %v vs %v", e10, e100)
	}
}

func TestRemoteBandwidthWireVsSoftwareLimited(t *testing.T) {
	const n = 8 << 20
	bw := func(m Medium, checksumMBs float64) float64 {
		r := newRig(t)
		cfg := baseCfg()
		cfg.ChecksumMBs = checksumMBs
		nt := r.net(cfg)
		src := r.os.Mem().Alloc(n)
		before := r.clk.Now()
		if err := nt.TCPSendRemote(m, src, n); err != nil {
			t.Fatal(err)
		}
		elapsed := r.clk.Now() - before
		return float64(n) / (1 << 20) / elapsed.Seconds()
	}
	// Slow wire, fast software: wire-limited near the medium's rate.
	slow := bw(Ether10, 0)
	if slow > 1.25 || slow < 0.8 {
		t.Errorf("10baseT bandwidth = %.2f MB/s, want ~1.19 (wire-limited)", slow)
	}
	// Fast wire, slow software checksum: software-limited well below
	// the 100MB/s Hippi wire.
	fast := bw(Hippi, 100)
	if fast > 60 {
		t.Errorf("hippi with software checksum = %.2f MB/s, want software-limited (<60)", fast)
	}
	// Hardware checksum on Hippi: much closer to the wire (the SGI
	// result in Table 4).
	hw := bw(Hippi, 0)
	if hw <= fast {
		t.Errorf("hardware checksum (%.2f) should beat software (%.2f)", hw, fast)
	}
}

func TestMediaConstants(t *testing.T) {
	for _, m := range []Medium{Ether10, Ether100, FDDI, Hippi} {
		if m.Name == "" || m.MBs <= 0 || m.LatencyUS <= 0 || m.PacketBytes <= 0 {
			t.Errorf("bad medium %+v", m)
		}
	}
	if FDDI.PacketBytes <= Ether100.PacketBytes {
		t.Error("FDDI packets should be larger than ethernet's")
	}
}

func TestConfigDefaults(t *testing.T) {
	r := newRig(t)
	nt := r.net(Config{})
	cfg := nt.Config()
	if cfg.TCPStackUS != 50 || cfg.UDPStackUS != 50 || cfg.MTU != 1500 || cfg.SocketBufBytes != 1<<20 {
		t.Errorf("defaults = %+v", cfg)
	}
}
