package simos

import (
	"errors"
	"math/rand"
)

// Pipe is a simulated Unix pipe: a one-way byte stream with a kernel
// buffer. Data movement is charged as two bcopy passes through the
// memory hierarchy (user->kernel, kernel->user), which is why simulated
// pipe bandwidth comes out near half of bcopy bandwidth, as §5.2
// predicts.
type Pipe struct {
	o    *OS
	kbuf uint64 // kernel buffer region
}

// NewPipe allocates a pipe with the configured kernel buffer size.
func (o *OS) NewPipe() *Pipe {
	return &Pipe{o: o, kbuf: o.mem.Alloc(int64(o.cfg.PipeBufBytes))}
}

// BufSize returns the kernel buffer size.
func (p *Pipe) BufSize() int { return p.o.cfg.PipeBufBytes }

// Transfer moves n bytes from the writer's buffer at src to the
// reader's buffer at dst, charging per-chunk: a write syscall, a bcopy
// into the kernel, a context switch to the reader, a read syscall, and
// a bcopy out to the reader. Returns an error for non-positive n.
func (p *Pipe) Transfer(src, dst uint64, n int64) error {
	if n <= 0 {
		return errors.New("simos: pipe transfer needs positive size")
	}
	buf := int64(p.o.cfg.PipeBufBytes)
	for off := int64(0); off < n; off += buf {
		chunk := buf
		if rem := n - off; rem < chunk {
			chunk = rem
		}
		p.o.Syscall() // write
		p.o.mem.StreamCopy(src+uint64(off), p.kbuf, chunk)
		p.o.ContextSwitch() // writer blocks, reader runs
		p.o.Syscall()       // read
		p.o.mem.StreamCopy(p.kbuf, dst+uint64(off), chunk)
	}
	return nil
}

// TokenRoundTrip charges one hot-potato exchange between two processes
// over a pair of pipes (Table 11): process A writes a word, B wakes and
// reads it, B writes it back, A wakes and reads it. That is four
// syscalls, four word copies and two context switches.
func (p *Pipe) TokenRoundTrip(scratchA, scratchB uint64) {
	const word = 8
	// A -> B.
	p.o.Syscall()
	p.o.mem.StreamCopy(scratchA, p.kbuf, word)
	p.o.ContextSwitch()
	p.o.Syscall()
	p.o.mem.StreamCopy(p.kbuf, scratchB, word)
	// B -> A.
	p.o.Syscall()
	p.o.mem.StreamCopy(scratchB, p.kbuf, word)
	p.o.ContextSwitch()
	p.o.Syscall()
	p.o.mem.StreamCopy(p.kbuf, scratchA, word)
}

// Ring is the §6.6 context-switch benchmark: 2..20 simulated processes
// connected by pipes, each with an optional cache footprint it re-sums
// on every token receipt. "Since most systems will cache data across
// context switches, the working set for the benchmark is slightly
// larger than the number of processes times the array size."
type Ring struct {
	o          *OS
	footprints [][]uint64 // per-process page lists
	pageSize   int64
	lastPage   int64 // bytes summed on the final (partial) page
	scratch    uint64
	kbuf       uint64
	cur        int
}

// NewRing builds a ring of n processes each with a footprint of the
// given byte size (0 means no footprint). Footprint pages are placed at
// pseudo-random simulated physical addresses — the paper attributes
// context-switch variability to exactly this: "the operating system is
// not using the same set of physical pages each time a process is
// created and we are seeing the effects of collisions in the external
// caches."
func (o *OS) NewRing(n int, footprint int64) (*Ring, error) {
	if n < 1 {
		return nil, errors.New("simos: ring needs at least one process")
	}
	if footprint < 0 {
		return nil, errors.New("simos: negative footprint")
	}
	r := &Ring{
		o:        o,
		pageSize: o.mem.PageSize(),
		scratch:  o.mem.Alloc(64),
		kbuf:     o.mem.Alloc(int64(o.cfg.PipeBufBytes)),
	}
	// Deterministic placement per ring shape so runs are reproducible.
	rng := rand.New(rand.NewSource(int64(n)*7919 + footprint))
	pages := int((footprint + r.pageSize - 1) / r.pageSize)
	r.lastPage = footprint - int64(pages-1)*r.pageSize
	for i := 0; i < n; i++ {
		var pp []uint64
		if footprint > 0 {
			pp = o.mem.AllocPages(pages, r.pageSize, rng)
		}
		r.footprints = append(r.footprints, pp)
	}
	return r, nil
}

// Procs returns the number of processes in the ring.
func (r *Ring) Procs() int { return len(r.footprints) }

// Pass moves the token one hop: the current process writes the token
// (syscall + word copy into the kernel), the scheduler switches to the
// next process (unless the ring is a single process, the degenerate
// form used to measure overhead), which reads the token (syscall + word
// copy out) and then sums its footprint through the shared caches.
func (r *Ring) Pass() {
	const word = 8
	r.o.Syscall()
	r.o.mem.StreamCopy(r.scratch, r.kbuf, word)
	if len(r.footprints) > 1 {
		r.o.ContextSwitch()
		r.cur = (r.cur + 1) % len(r.footprints)
	}
	r.o.Syscall()
	r.o.mem.StreamCopy(r.kbuf, r.scratch, word)
	if pp := r.footprints[r.cur]; len(pp) > 0 {
		r.o.mem.StreamReadPages(pp[:len(pp)-1], r.pageSize)
		r.o.mem.StreamRead(pp[len(pp)-1], r.lastPage)
	}
}

// Warm circulates the token around the whole ring once so that steady
// state is reached before measurement.
func (r *Ring) Warm() {
	for i := 0; i < len(r.footprints); i++ {
		r.Pass()
	}
}
