// Package simos models the operating-system primitives the paper
// measures in §6.3-6.6: system-call entry, signal handling, process
// creation, context switching and pipes.
//
// Costs are constructed, not looked up, wherever the paper's analysis is
// structural: a fork is a syscall plus a per-page address-space copy
// plus two context switches; an exec adds image loading and shared-
// library startup; "/bin/sh -c" adds the shell's own exec plus a $PATH
// search. Pipe transfers are two system calls plus two bcopy passes
// through the simulated memory hierarchy ("the pipe write/read is
// typically implemented as a bcopy into the kernel from the writer and
// then a bcopy from the kernel to the reader"), so pipe bandwidth lands
// near half of bcopy bandwidth *emergently*. The context-switch ring
// sums per-process footprints through the shared cache simulator, which
// is what produces Figure 2's knee at the L2 size.
package simos

import (
	"fmt"

	"repro/internal/ptime"
	"repro/internal/sim"
	"repro/internal/simmem"
)

// Config holds the OS cost parameters for one machine profile.
type Config struct {
	// SyscallNS is the cost of one nontrivial kernel entry+exit, the
	// paper's write-to-/dev/null (Table 7).
	SyscallNS float64
	// SigInstallNS is the total cost of one sigaction call (Table 8's
	// "sigaction" column). It can be below SyscallNS: sigaction is a
	// lighter kernel entry than the deliberately nontrivial
	// write-to-/dev/null.
	SigInstallNS float64
	// SigHandlerNS is the total cost of sending the current process a
	// signal and dispatching it to the installed handler (Table 8's
	// "sig handler" column).
	SigHandlerNS float64
	// CtxSwitchNS is the bare scheduler+register cost of switching
	// between two runnable processes with no cache footprint.
	CtxSwitchNS float64
	// ProcPages is the resident page count of the benchmark process
	// that fork must duplicate (page tables plus touched pages).
	ProcPages int
	// PageCopyNS is the per-page cost of duplicating the address space
	// on fork (page-table entry copy; data pages are COW).
	PageCopyNS float64
	// ExecNS is the additional cost of execve: loading the new image
	// and, on systems with shared libraries, the dynamic-linker
	// startup the paper calls out as "tens of milliseconds".
	ExecNS float64
	// ShellNS is the additional cost of going through /bin/sh -c: the
	// shell's own fork+exec plus its $PATH search.
	ShellNS float64
	// PipeBufBytes is the kernel pipe buffer size (default 64K, the
	// transfer size the paper picked so syscall and context-switch
	// overhead "would not dominate").
	PipeBufBytes int
}

func (c Config) withDefaults() Config {
	if c.SyscallNS <= 0 {
		c.SyscallNS = 5000
	}
	if c.CtxSwitchNS <= 0 {
		c.CtxSwitchNS = 10000
	}
	if c.ProcPages <= 0 {
		c.ProcPages = 64
	}
	if c.PipeBufBytes <= 0 {
		c.PipeBufBytes = 64 << 10
	}
	return c
}

// OS is the simulated operating system for one machine.
type OS struct {
	cpu *sim.CPU
	clk *sim.Clock
	mem *simmem.Hierarchy
	cfg Config

	syscall    ptime.Duration
	sigInstall ptime.Duration
	sigHandler ptime.Duration
	ctxSwitch  ptime.Duration
	pageCopy   ptime.Duration
	exec       ptime.Duration
	shell      ptime.Duration

	sigInstalled bool
}

// New builds an OS charging time through cpu's clock and moving data
// through mem.
func New(cpu *sim.CPU, mem *simmem.Hierarchy, cfg Config) *OS {
	cfg = cfg.withDefaults()
	return &OS{
		cpu:        cpu,
		clk:        cpu.Clock(),
		mem:        mem,
		cfg:        cfg,
		syscall:    ptime.FromNS(cfg.SyscallNS),
		sigInstall: ptime.FromNS(cfg.SigInstallNS),
		sigHandler: ptime.FromNS(cfg.SigHandlerNS),
		ctxSwitch:  ptime.FromNS(cfg.CtxSwitchNS),
		pageCopy:   ptime.FromNS(cfg.PageCopyNS),
		exec:       ptime.FromNS(cfg.ExecNS),
		shell:      ptime.FromNS(cfg.ShellNS),
	}
}

// Reset clears process-visible kernel state (the installed signal
// handler), returning the OS to its post-boot condition.
func (o *OS) Reset() { o.sigInstalled = false }

// Config returns the defaulted configuration.
func (o *OS) Config() Config { return o.cfg }

// Mem returns the memory hierarchy the OS moves data through.
func (o *OS) Mem() *simmem.Hierarchy { return o.mem }

// Syscall charges one nontrivial kernel entry: the write of one word to
// /dev/null ("go through the system call table to write, verify the
// user area as readable, look up the file descriptor, call the vnode's
// write function, and then return").
func (o *OS) Syscall() { o.clk.Advance(o.syscall) }

// SignalInstall charges one sigaction call.
func (o *OS) SignalInstall() {
	o.clk.Advance(o.sigInstall)
	o.sigInstalled = true
}

// SignalCatch charges sending a signal to the current process and
// dispatching it to the installed handler (no context switch: "the
// signal goes to the same process that generated the signal").
// It returns an error if no handler is installed.
func (o *OS) SignalCatch() error {
	if !o.sigInstalled {
		return fmt.Errorf("simos: SignalCatch without SignalInstall")
	}
	o.clk.Advance(o.sigHandler)
	return nil
}

// ContextSwitch charges the bare cost of switching to another process.
// Cache-footprint effects are not charged here; they emerge when the
// switched-to process touches its own working set through the shared
// hierarchy (see Ring).
func (o *OS) ContextSwitch() { o.clk.Advance(o.ctxSwitch) }

// ForkExit charges the simple-process-creation ladder rung of Table 9:
// fork a child that immediately exits, parent waits. Components: the
// fork syscall with its per-page address-space duplication, the child's
// exit and the parent's wait syscalls, and two context switches
// (parent->child->parent).
func (o *OS) ForkExit() {
	o.clk.Advance(o.forkCost())
}

func (o *OS) forkCost() ptime.Duration {
	d := o.syscall                              // fork
	d += o.pageCopy.Mul(int64(o.cfg.ProcPages)) // duplicate address space
	d += o.syscall                              // child exit
	d += o.syscall                              // parent wait
	d += o.ctxSwitch.Mul(2)                     // parent->child->parent
	return d
}

// ForkExecExit charges Table 9's second rung: fork plus exec of a tiny
// "hello world" program that exits.
func (o *OS) ForkExecExit() {
	o.clk.Advance(o.forkCost() + o.syscall + o.exec)
}

// ForkShExit charges Table 9's third rung: fork plus exec of
// "/bin/sh -c prog". The shell searches $PATH and — with a single
// command under -c — execs the program directly in place ("the cost of
// asking the shell to go look for the program is quite large,
// frequently ten times as expensive as just creating a new process").
func (o *OS) ForkShExit() {
	// One fork, an exec of the shell, the shell's startup and $PATH
	// search, then an exec of the target program.
	o.clk.Advance(o.forkCost() + o.syscall + o.exec + o.shell + o.syscall + o.exec)
}
