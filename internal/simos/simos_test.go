package simos

import (
	"testing"

	"repro/internal/ptime"
	"repro/internal/sim"
	"repro/internal/simmem"
)

// testOS builds an OS over a small two-level hierarchy with round
// numbers (same geometry as the simmem tests: 8K L1, 256K L2).
func testOS(t *testing.T, mutate func(*Config)) (*OS, *sim.Clock) {
	t.Helper()
	clk := &sim.Clock{}
	cpu := sim.NewCPU(clk, sim.CPUConfig{MHz: 100, IssueWidth: 4})
	mem, err := simmem.New(cpu, simmem.Config{
		Caches: []simmem.CacheConfig{
			{Name: "L1", Size: 8 << 10, LineSize: 32, Assoc: 2, LatencyNS: 5, FillNS: 5},
			{Name: "L2", Size: 256 << 10, LineSize: 32, Assoc: 4, LatencyNS: 50, FillNS: 40},
		},
		DRAM: simmem.DRAMConfig{LatencyNS: 300, FillNS: 100, WritebackNS: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		SyscallNS:    3000,
		SigInstallNS: 1000,
		SigHandlerNS: 14000,
		CtxSwitchNS:  6000,
		ProcPages:    50,
		PageCopyNS:   6000,
		ExecNS:       300000,
		ShellNS:      2000000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cpu, mem, cfg), clk
}

func TestSyscallCost(t *testing.T) {
	o, clk := testOS(t, nil)
	o.Syscall()
	if got := clk.Now(); got != 3*ptime.Microsecond {
		t.Errorf("syscall = %v, want 3us", got)
	}
}

func TestSignals(t *testing.T) {
	o, clk := testOS(t, nil)
	if err := o.SignalCatch(); err == nil {
		t.Error("SignalCatch before SignalInstall should error")
	}
	o.SignalInstall()
	if got := clk.Now(); got != 1*ptime.Microsecond { // absolute sigaction cost
		t.Errorf("install = %v, want 1us", got)
	}
	before := clk.Now()
	if err := o.SignalCatch(); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now() - before; got != 14*ptime.Microsecond { // absolute dispatch cost
		t.Errorf("catch = %v, want 14us", got)
	}
}

func TestProcessCreationLadder(t *testing.T) {
	o, clk := testOS(t, nil)

	before := clk.Now()
	o.ForkExit()
	fork := clk.Now() - before

	before = clk.Now()
	o.ForkExecExit()
	forkExec := clk.Now() - before

	before = clk.Now()
	o.ForkShExit()
	sh := clk.Now() - before

	if !(fork < forkExec && forkExec < sh) {
		t.Errorf("ladder not monotone: fork=%v exec=%v sh=%v", fork, forkExec, sh)
	}
	// fork = 3*3us syscalls + 50*6us pages + 2*6us ctx = 321us.
	if fork != 321*ptime.Microsecond {
		t.Errorf("fork = %v, want 321us", fork)
	}
	// The paper: sh -c is "frequently ten times as expensive as just
	// creating a new process, and four times as expensive as explicitly
	// naming the location". Require at least 2x and 1.5x here.
	if float64(sh) < 2*float64(forkExec) {
		t.Errorf("sh (%v) should be >= 2x fork+exec (%v)", sh, forkExec)
	}
	if float64(sh) < 3*float64(fork) {
		t.Errorf("sh (%v) should be >= 3x fork (%v)", sh, fork)
	}
}

func TestPipeTransferCostsTwoCopies(t *testing.T) {
	o, clk := testOS(t, nil)
	mem := o.Mem()
	const n = 1 << 20

	src := mem.Alloc(n)
	dst := mem.Alloc(n)
	// Reference: one direct bcopy of the same size.
	before := clk.Now()
	mem.StreamCopy(src, dst, n)
	oneCopy := clk.Now() - before

	p := o.NewPipe()
	src2 := mem.Alloc(n)
	dst2 := mem.Alloc(n)
	before = clk.Now()
	if err := p.Transfer(src2, dst2, n); err != nil {
		t.Fatal(err)
	}
	viaPipe := clk.Now() - before

	// The pipe path is two bcopys plus syscall/context overhead, so it
	// must cost more than 1.2x and less than ~4x one bcopy (the second
	// copy often runs faster because the 64K kernel buffer stays
	// cache-resident, which is exactly the Table 3 note about pipe
	// rates beating bcopy rates).
	lo, hi := 1.2, 4.0
	ratio := float64(viaPipe) / float64(oneCopy)
	if ratio < lo || ratio > hi {
		t.Errorf("pipe/bcopy ratio = %.2f, want in [%v, %v]", ratio, lo, hi)
	}
}

func TestPipeTransferChunks(t *testing.T) {
	// Make syscall cost dominate so chunk count is visible in time.
	o, clk := testOS(t, func(c *Config) {
		c.SyscallNS = 1e6 // 1ms
		c.CtxSwitchNS = 1
	})
	p := o.NewPipe()
	mem := o.Mem()
	src := mem.Alloc(160 << 10)
	dst := mem.Alloc(160 << 10)
	before := clk.Now()
	if err := p.Transfer(src, dst, 160<<10); err != nil { // 3 chunks of 64K
		t.Fatal(err)
	}
	elapsed := clk.Now() - before
	// 3 chunks x 2 syscalls x 1ms = 6ms of syscall time.
	if elapsed < 6*ptime.Millisecond || elapsed > 8*ptime.Millisecond {
		t.Errorf("3-chunk transfer = %v, want ~6ms of syscalls", elapsed)
	}
	if err := p.Transfer(src, dst, 0); err == nil {
		t.Error("zero-size transfer should error")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	o, clk := testOS(t, nil)
	mem := o.Mem()
	a := mem.Alloc(64)
	b := mem.Alloc(64)
	p := o.NewPipe()
	p.TokenRoundTrip(a, b) // warm
	before := clk.Now()
	p.TokenRoundTrip(a, b)
	got := clk.Now() - before
	// 4 syscalls (12us) + 2 ctx switches (12us) + 4 word copies.
	min := 24 * ptime.Microsecond
	if got < min || got > min+10*ptime.Microsecond {
		t.Errorf("round trip = %v, want slightly above %v", got, min)
	}
}

func TestRingValidation(t *testing.T) {
	o, _ := testOS(t, nil)
	if _, err := o.NewRing(0, 0); err == nil {
		t.Error("0-process ring should error")
	}
	if _, err := o.NewRing(2, -1); err == nil {
		t.Error("negative footprint should error")
	}
	r, err := o.NewRing(3, 0)
	if err != nil || r.Procs() != 3 {
		t.Errorf("NewRing = %v, %v", r, err)
	}
}

// perPass measures the steady-state per-hop time of a ring.
func perPass(o *OS, clk *sim.Clock, procs int, footprint int64, t *testing.T) ptime.Duration {
	r, err := o.NewRing(procs, footprint)
	if err != nil {
		t.Fatal(err)
	}
	r.Warm()
	r.Warm()
	const hops = 40
	before := clk.Now()
	for i := 0; i < hops; i++ {
		r.Pass()
	}
	return (clk.Now() - before).DivN(hops)
}

func TestRingContextSwitchExtraction(t *testing.T) {
	o, clk := testOS(t, nil)
	overhead := perPass(o, clk, 1, 0, t)
	twoProc := perPass(o, clk, 2, 0, t)
	ctx := twoProc - overhead
	// With no footprint the extracted context switch must be the
	// configured base cost (6us) almost exactly.
	if diff := ctx - 6*ptime.Microsecond; diff < -ptime.Microsecond || diff > ptime.Microsecond {
		t.Errorf("extracted ctx = %v, want ~6us", ctx)
	}
}

// TestRingCacheKnee is the emergent-Figure-2 test: when the combined
// footprints blow out the 256K L2, per-switch cost must jump because
// each process has to refill its working set from memory.
func TestRingCacheKnee(t *testing.T) {
	o, clk := testOS(t, nil)
	overheadSmall := perPass(o, clk, 1, 32<<10, t)
	fits := perPass(o, clk, 2, 32<<10, t) - overheadSmall // 64K total: fits L2

	o2, clk2 := testOS(t, nil)
	overheadSmall2 := perPass(o2, clk2, 1, 32<<10, t)
	blown := perPass(o2, clk2, 16, 32<<10, t) - overheadSmall2 // 512K total: thrashes L2

	if float64(blown) < 2*float64(fits) {
		t.Errorf("ctx with blown cache = %v, want >= 2x in-cache %v", blown, fits)
	}
}

// TestRingMonotoneInFootprint: bigger footprints cannot make switches
// cheaper.
func TestRingMonotoneInFootprint(t *testing.T) {
	sizes := []int64{0, 4 << 10, 16 << 10, 64 << 10}
	var prev ptime.Duration = -1
	for _, sz := range sizes {
		o, clk := testOS(t, nil)
		pp := perPass(o, clk, 8, sz, t)
		if pp < prev {
			t.Errorf("per-pass decreased at footprint %d: %v after %v", sz, pp, prev)
		}
		prev = pp
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SyscallNS <= 0 || cfg.CtxSwitchNS <= 0 || cfg.ProcPages <= 0 || cfg.PipeBufBytes != 64<<10 {
		t.Errorf("defaults = %+v", cfg)
	}
	o, _ := testOS(t, nil)
	if o.Config().PipeBufBytes != 64<<10 {
		t.Error("Config accessor broken")
	}
	p := o.NewPipe()
	if p.BufSize() != 64<<10 {
		t.Error("BufSize broken")
	}
}
