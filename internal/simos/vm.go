package simos

import (
	"container/list"
	"errors"

	"repro/internal/simdisk"
)

// VM models demand paging for the §3.1 memory-sizing probe: "A small
// test program allocates as much memory as it can, clears the memory,
// and then strides through that memory a page at a time, timing each
// reference. If any reference takes more than a few microseconds, the
// page is no longer in memory."
//
// Touching a resident page costs a memory reference; touching a
// non-resident page is a major fault: one page-sized disk read plus
// kernel entry, with the least-recently-used resident page evicted.
type VM struct {
	o         *OS
	disk      *simdisk.Disk
	physPages int64
	pageBytes int64

	resident map[int64]*list.Element
	lru      *list.List // front = most recent

	// Faults counts major faults, for tests.
	Faults int64

	// diskPos scatters fault reads across the swap area.
	diskPos int64
}

// NewVM builds a paging model with the given physical memory, backed
// by disk for major faults.
func (o *OS) NewVM(physBytes int64, pageBytes int64, disk *simdisk.Disk) (*VM, error) {
	if physBytes <= 0 || pageBytes <= 0 {
		return nil, errors.New("simos: VM needs positive sizes")
	}
	if disk == nil {
		return nil, errors.New("simos: VM needs a backing disk")
	}
	return &VM{
		o:         o,
		disk:      disk,
		physPages: physBytes / pageBytes,
		pageBytes: pageBytes,
		resident:  make(map[int64]*list.Element),
		lru:       list.New(),
	}, nil
}

// PageBytes returns the page size.
func (vm *VM) PageBytes() int64 { return vm.pageBytes }

// PhysBytes returns the modeled physical memory.
func (vm *VM) PhysBytes() int64 { return vm.physPages * vm.pageBytes }

// Touch references one page: a cheap memory access when resident, a
// major fault otherwise.
func (vm *VM) Touch(page int64) {
	if el, ok := vm.resident[page]; ok {
		vm.lru.MoveToFront(el)
		// One memory reference through the hierarchy (addresses in a
		// dedicated high range; simmem addresses are plain numbers).
		vm.o.mem.Load(uint64(1)<<40 + uint64(page*vm.pageBytes))
		return
	}
	vm.Faults++
	// Kernel entry plus a page-sized transfer from the backing store.
	vm.o.Syscall()
	vm.diskPos += vm.pageBytes
	if vm.diskPos+vm.pageBytes > vm.disk.Size() {
		vm.diskPos = 0
	}
	// Swap-area geometry is always within the device by construction.
	_ = vm.disk.Read(vm.diskPos, vm.pageBytes)
	if int64(vm.lru.Len()) >= vm.physPages {
		oldest := vm.lru.Back()
		vm.lru.Remove(oldest)
		delete(vm.resident, oldest.Value.(int64))
	}
	vm.resident[page] = vm.lru.PushFront(page)
}

// TouchPages touches pages [0, n) once each, in order — one pass of
// the §3.1 probe's stride loop.
func (vm *VM) TouchPages(n int64) {
	for p := int64(0); p < n; p++ {
		vm.Touch(p)
	}
}
