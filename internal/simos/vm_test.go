package simos

import (
	"testing"

	"repro/internal/ptime"
	"repro/internal/simdisk"
)

func TestVMValidation(t *testing.T) {
	o, _ := testOS(t, nil)
	disk := simdisk.New(o.Mem().ClockHandle(), simdisk.Config{})
	if _, err := o.NewVM(0, 4096, disk); err == nil {
		t.Error("zero memory should error")
	}
	if _, err := o.NewVM(1<<20, 0, disk); err == nil {
		t.Error("zero page size should error")
	}
	if _, err := o.NewVM(1<<20, 4096, nil); err == nil {
		t.Error("nil disk should error")
	}
}

func TestVMResidentTouchIsCheap(t *testing.T) {
	o, clk := testOS(t, nil)
	disk := simdisk.New(clk, simdisk.Config{})
	vm, err := o.NewVM(1<<20, 4096, disk) // 256 pages
	if err != nil {
		t.Fatal(err)
	}
	vm.Touch(0) // major fault
	if vm.Faults != 1 {
		t.Errorf("Faults = %d", vm.Faults)
	}
	before := clk.Now()
	vm.Touch(0) // resident
	if got := clk.Now() - before; got > 10*ptime.Microsecond {
		t.Errorf("resident touch = %v, want sub-10us", got)
	}
	if vm.Faults != 1 {
		t.Errorf("resident touch faulted: %d", vm.Faults)
	}
}

func TestVMFaultIsMilliseconds(t *testing.T) {
	o, clk := testOS(t, nil)
	disk := simdisk.New(clk, simdisk.Config{})
	vm, _ := o.NewVM(1<<20, 4096, disk)
	before := clk.Now()
	vm.Touch(42)
	if got := clk.Now() - before; got < ptime.Millisecond {
		t.Errorf("major fault = %v, want >= 1ms (disk read)", got)
	}
}

func TestVMLRUEviction(t *testing.T) {
	o, _ := testOS(t, nil)
	disk := simdisk.New(o.Mem().ClockHandle(), simdisk.Config{})
	vm, _ := o.NewVM(4*4096, 4096, disk) // 4 physical pages
	// Fill pages 0..3, then touch 4: page 0 (LRU) must be evicted.
	vm.TouchPages(4)
	vm.Touch(4)
	faults := vm.Faults
	vm.Touch(1) // still resident
	if vm.Faults != faults {
		t.Error("page 1 should still be resident")
	}
	vm.Touch(0) // evicted: refault
	if vm.Faults != faults+1 {
		t.Error("page 0 should have been evicted")
	}
	if vm.PageBytes() != 4096 || vm.PhysBytes() != 4*4096 {
		t.Errorf("geometry: %d, %d", vm.PageBytes(), vm.PhysBytes())
	}
}

// TestVMProbeSemantics replays the §3.1 probe logic: per-touch time
// jumps by orders of magnitude once the working set exceeds physical
// memory.
func TestVMProbeSemantics(t *testing.T) {
	o, clk := testOS(t, nil)
	disk := simdisk.New(clk, simdisk.Config{})
	const physPages = 256
	vm, _ := o.NewVM(physPages*4096, 4096, disk)

	perTouch := func(pages int64) ptime.Duration {
		vm.TouchPages(pages) // populate
		before := clk.Now()
		vm.TouchPages(pages)
		return (clk.Now() - before).DivN(pages)
	}
	fits := perTouch(128)
	thrashes := perTouch(512) // 2x physical: every touch refaults
	if fits > 10*ptime.Microsecond {
		t.Errorf("fitting pass = %v/touch, want cheap", fits)
	}
	if thrashes < ptime.Millisecond {
		t.Errorf("thrashing pass = %v/touch, want disk-bound", thrashes)
	}
}
