// Package simsmp models the multiprocessor memory behaviour behind the
// paper's §7 MP future-work item ("At a minimum, we could measure
// cache-to-cache latency as well as cache-to-cache bandwidth"): two
// processors with private caches kept coherent by an MSI protocol over
// a shared bus, where a load that hits a line modified in the *other*
// processor's cache is serviced by a cache-to-cache transfer.
package simsmp

import (
	"errors"

	"repro/internal/ptime"
	"repro/internal/sim"
)

// Config parameterizes the coherence model.
type Config struct {
	// LineSize is the coherence granule (default 32).
	LineSize int
	// HitNS is a local cache hit (default 10).
	HitNS float64
	// C2CNS is a cache-to-cache transfer of one line, the §7 quantity
	// (1995 snoopy buses made this comparable to or slower than a
	// memory access).
	C2CNS float64
	// MemNS is a line fill from memory (default = C2CNS).
	MemNS float64
	// UpgradeNS is a bus upgrade (invalidate) without data transfer
	// (default C2CNS/2).
	UpgradeNS float64
}

func (c Config) withDefaults() Config {
	if c.LineSize <= 0 {
		c.LineSize = 32
	}
	if c.HitNS <= 0 {
		c.HitNS = 10
	}
	if c.C2CNS <= 0 {
		c.C2CNS = 400
	}
	if c.MemNS <= 0 {
		c.MemNS = c.C2CNS
	}
	if c.UpgradeNS <= 0 {
		c.UpgradeNS = c.C2CNS / 2
	}
	return c
}

// mesi is the per-CPU line state (MSI subset: E folded into M).
type mesi uint8

const (
	invalid mesi = iota
	shared
	modified
)

// System is a two-processor coherent memory system. Capacity effects
// are ignored (the workloads here bounce a handful of lines); only
// coherence state is tracked.
type System struct {
	clk   *sim.Clock
	cfg   Config
	state map[uint64][2]mesi

	hit, c2c, mem, upgrade ptime.Duration

	// Stats.
	C2CTransfers int64
	MemFills     int64
}

// New builds a system charging time to clk.
func New(clk *sim.Clock, cfg Config) *System {
	cfg = cfg.withDefaults()
	return &System{
		clk:     clk,
		cfg:     cfg,
		state:   make(map[uint64][2]mesi),
		hit:     ptime.FromNS(cfg.HitNS),
		c2c:     ptime.FromNS(cfg.C2CNS),
		mem:     ptime.FromNS(cfg.MemNS),
		upgrade: ptime.FromNS(cfg.UpgradeNS),
	}
}

// Config returns the defaulted configuration.
func (s *System) Config() Config { return s.cfg }

var errCPU = errors.New("simsmp: cpu must be 0 or 1")

func (s *System) line(addr uint64) uint64 { return addr / uint64(s.cfg.LineSize) }

// Read performs one load by the given processor.
func (s *System) Read(cpu int, addr uint64) error {
	if cpu != 0 && cpu != 1 {
		return errCPU
	}
	l := s.line(addr)
	st := s.state[l]
	other := 1 - cpu
	switch {
	case st[cpu] != invalid:
		s.clk.Advance(s.hit)
	case st[other] == modified:
		// Dirty in the other cache: cache-to-cache transfer, both
		// end up shared.
		s.C2CTransfers++
		s.clk.Advance(s.c2c)
		st[other] = shared
		st[cpu] = shared
	default:
		s.MemFills++
		s.clk.Advance(s.mem)
		st[cpu] = shared
	}
	s.state[l] = st
	return nil
}

// Write performs one store by the given processor.
func (s *System) Write(cpu int, addr uint64) error {
	if cpu != 0 && cpu != 1 {
		return errCPU
	}
	l := s.line(addr)
	st := s.state[l]
	other := 1 - cpu
	switch {
	case st[cpu] == modified:
		s.clk.Advance(s.hit)
	case st[other] == modified:
		// Read-for-ownership from the other cache.
		s.C2CTransfers++
		s.clk.Advance(s.c2c)
		st[other] = invalid
		st[cpu] = modified
	case st[cpu] == shared || st[other] == shared:
		// Upgrade: invalidate the sharer, no data moves.
		s.clk.Advance(s.upgrade)
		st[other] = invalid
		st[cpu] = modified
	default:
		s.MemFills++
		s.clk.Advance(s.mem)
		st[cpu] = modified
	}
	s.state[l] = st
	return nil
}

// PingPong bounces one modified line between the processors once:
// CPU0 writes it, CPU1 reads and rewrites it, CPU0 reads it back.
// In steady state that is two dirty-miss transfers plus the
// share/upgrade traffic.
func (s *System) PingPong(addr uint64) error {
	if err := s.Write(0, addr); err != nil {
		return err
	}
	if err := s.Read(1, addr); err != nil {
		return err
	}
	if err := s.Write(1, addr); err != nil {
		return err
	}
	return s.Read(0, addr)
}

// Transfer streams n bytes of lines dirtied by CPU1 into CPU0's cache:
// the cache-to-cache bandwidth workload.
func (s *System) Transfer(n int64) error {
	if n <= 0 {
		return errors.New("simsmp: transfer needs positive size")
	}
	line := int64(s.cfg.LineSize)
	for off := int64(0); off < n; off += line {
		addr := uint64(off)
		if err := s.Write(1, addr); err != nil {
			return err
		}
		if err := s.Read(0, addr); err != nil {
			return err
		}
	}
	return nil
}
