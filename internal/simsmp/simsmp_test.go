package simsmp

import (
	"testing"

	"repro/internal/ptime"
	"repro/internal/sim"
)

func testSys() (*System, *sim.Clock) {
	clk := &sim.Clock{}
	return New(clk, Config{LineSize: 32, HitNS: 10, C2CNS: 400, MemNS: 300, UpgradeNS: 150}), clk
}

func TestDefaults(t *testing.T) {
	s := New(&sim.Clock{}, Config{})
	cfg := s.Config()
	if cfg.LineSize != 32 || cfg.C2CNS != 400 || cfg.MemNS != 400 || cfg.UpgradeNS != 200 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestColdReadFillsFromMemory(t *testing.T) {
	s, clk := testSys()
	if err := s.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 300*ptime.Nanosecond {
		t.Errorf("cold read = %v, want 300ns", clk.Now())
	}
	before := clk.Now()
	_ = s.Read(0, 0)
	if clk.Now()-before != 10*ptime.Nanosecond {
		t.Errorf("hit = %v, want 10ns", clk.Now()-before)
	}
	if s.MemFills != 1 {
		t.Errorf("MemFills = %d", s.MemFills)
	}
}

func TestDirtyReadIsCacheToCache(t *testing.T) {
	s, clk := testSys()
	_ = s.Write(0, 0) // cold write: memory fill, M in cpu0
	before := clk.Now()
	_ = s.Read(1, 0) // dirty in the other cache
	if clk.Now()-before != 400*ptime.Nanosecond {
		t.Errorf("dirty remote read = %v, want 400ns c2c", clk.Now()-before)
	}
	if s.C2CTransfers != 1 {
		t.Errorf("C2CTransfers = %d", s.C2CTransfers)
	}
	// Both now shared: local hits.
	before = clk.Now()
	_ = s.Read(0, 0)
	_ = s.Read(1, 0)
	if clk.Now()-before != 20*ptime.Nanosecond {
		t.Errorf("shared hits = %v", clk.Now()-before)
	}
}

func TestWriteUpgradeInvalidates(t *testing.T) {
	s, clk := testSys()
	_ = s.Read(0, 0)
	_ = s.Read(1, 0) // both shared (second read fills from memory: no M copy)
	before := clk.Now()
	_ = s.Write(0, 0) // upgrade
	if clk.Now()-before != 150*ptime.Nanosecond {
		t.Errorf("upgrade = %v, want 150ns", clk.Now()-before)
	}
	// CPU1 must re-fetch: dirty in cpu0 -> c2c.
	before = clk.Now()
	_ = s.Read(1, 0)
	if clk.Now()-before != 400*ptime.Nanosecond {
		t.Errorf("post-invalidate read = %v, want c2c", clk.Now()-before)
	}
}

func TestWriteDirtyRemoteRFO(t *testing.T) {
	s, clk := testSys()
	_ = s.Write(0, 0)
	before := clk.Now()
	_ = s.Write(1, 0) // RFO from cpu0's modified copy
	if clk.Now()-before != 400*ptime.Nanosecond {
		t.Errorf("remote RFO = %v, want c2c", clk.Now()-before)
	}
	// cpu0 is invalid now; its next write is another transfer back.
	before = clk.Now()
	_ = s.Write(0, 0)
	if clk.Now()-before != 400*ptime.Nanosecond {
		t.Errorf("bounce back = %v, want c2c", clk.Now()-before)
	}
}

func TestPingPongSteadyState(t *testing.T) {
	s, clk := testSys()
	_ = s.PingPong(0) // warm (first op is a memory fill)
	before := clk.Now()
	_ = s.PingPong(0)
	elapsed := clk.Now() - before
	// Steady state: the trailing R0 leaves the line shared, so W0 is
	// an upgrade (150), R1 a c2c transfer (400), W1 an upgrade (150),
	// R0 a c2c transfer (400).
	want := (150 + 400 + 150 + 400) * ptime.Nanosecond
	if elapsed != want {
		t.Errorf("ping-pong = %v, want %v", elapsed, want)
	}
}

func TestTransferBandwidth(t *testing.T) {
	s, clk := testSys()
	if err := s.Transfer(0); err == nil {
		t.Error("zero transfer should error")
	}
	before := clk.Now()
	if err := s.Transfer(32 * 100); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - before
	// First pass: 100 lines x (mem fill for W1 + c2c for R0).
	want := 100 * (300 + 400) * ptime.Nanosecond
	if elapsed != want {
		t.Errorf("transfer = %v, want %v", elapsed, want)
	}
	if s.C2CTransfers != 100 {
		t.Errorf("C2CTransfers = %d", s.C2CTransfers)
	}
}

func TestBadCPU(t *testing.T) {
	s, _ := testSys()
	if err := s.Read(2, 0); err == nil {
		t.Error("cpu 2 should error")
	}
	if err := s.Write(-1, 0); err == nil {
		t.Error("cpu -1 should error")
	}
}

func TestLineGranularity(t *testing.T) {
	s, _ := testSys()
	_ = s.Write(0, 0)
	// Same line, different word: still a hit.
	before := s.clk.Now()
	_ = s.Write(0, 16)
	if s.clk.Now()-before != 10*ptime.Nanosecond {
		t.Error("same-line write should hit")
	}
	// Next line: cold.
	before = s.clk.Now()
	_ = s.Write(0, 32)
	if s.clk.Now()-before != 300*ptime.Nanosecond {
		t.Error("next line should miss to memory")
	}
}
