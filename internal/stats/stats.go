// Package stats provides the small statistics kit used throughout the
// benchmark suite: order statistics, central moments, harmonic means,
// least-squares fitting, and plateau (step) detection on measured curves.
//
// lmbench's reporting policy is built on order statistics rather than
// means: the paper compensates for run-to-run variability (up to 30% on
// the context-switch benchmark) by taking the minimum of repeated runs,
// and its tables are sorted best-to-worst. This package supplies those
// primitives for the harness and the analysis code.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// ErrNaN is returned by order statistics when the sample set contains
// NaN. NaN is unordered, so sorting a contaminated set silently
// produces an arbitrary permutation and an arbitrary percentile; the
// results layer already refuses NaN at the database boundary
// (results.DB.Add), and the stats layer matches that policy rather
// than returning garbage.
var ErrNaN = errors.New("stats: NaN sample")

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// HarmonicMean returns the harmonic mean of xs. All samples must be
// positive; the harmonic mean is the correct way to average rates
// (e.g. MB/s over equal byte counts).
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: harmonic mean requires positive samples")
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum, nil
}

// Variance returns the unbiased sample variance of xs.
// It requires at least two samples.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: variance requires at least two samples")
	}
	mean, _ := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
//
// Pinned edge cases (the adaptive sweep planner's stopping rule calls
// this on refinement windows as small as one sample, where every edge
// below actually occurs):
//   - p=0 returns the minimum and p=100 the maximum, exactly — no
//     interpolation arithmetic that could drift off the extremes.
//   - A single-sample set returns that sample for every p.
//   - A NaN p is rejected (it is not in [0,100]; the comparison-based
//     range check alone would let it through and index with a garbage
//     rank), as is any NaN-contaminated sample set (ErrNaN) — NaN is
//     unordered and corrupts the sort, mirroring results.DB.Add's
//     refusal to store NaN.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return 0, ErrNaN
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	if p == 0 {
		return sorted[0], nil
	}
	if p == 100 {
		return sorted[len(sorted)-1], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MAD returns the median absolute deviation of xs: the median of
// |x - median(xs)|. It is the robust spread estimator behind the
// harness's measurement quality gate — unlike the standard deviation it
// is not dominated by the occasional scheduling hiccup that min-of-N
// reporting is designed to survive.
func MAD(xs []float64) (float64, error) {
	med, err := Median(xs)
	if err != nil {
		return 0, err
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// ErrZeroMedian is returned by RelSpread when the sample set's
// baseline (its minimum) is zero or denormal while other samples are
// not. Dividing by such a baseline would produce NaN/Inf; callers that
// promise finite statistics (the suite's quality.* attrs) must treat
// the measurement as degenerate instead. A fault-injected or
// quantized clock returning identical zero samples does NOT hit this
// error: when every sample is (effectively) zero the set has no
// dispersion and its spread is defined as exactly 0.
var ErrZeroMedian = errors.New("stats: zero or denormal median/baseline with nonzero spread")

// minNormal is the smallest positive normal float64; anything below it
// (zero or denormal) is useless as a division baseline.
const minNormal = 0x1p-1022

// RelSpread returns the relative spread of the min-of-N sample set:
// (median - min) / min. lmbench reports the minimum of repeated
// measurements; this statistic says how far the typical sample sits
// above that minimum. A small value means the minimum is well
// supported by the rest of the samples; a large value means the run
// was noisy and the reported minimum may be a fluke. Samples are
// durations and must be non-negative.
//
// Degenerate sets are defined rather than left to float division: an
// all-(effectively-)zero sample set — e.g. a quantized clock that
// never ticked — has spread 0 by definition; a zero baseline under
// larger samples has no meaningful relative spread and returns
// ErrZeroMedian. The returned value is always finite.
func RelSpread(xs []float64) (float64, error) {
	min, err := Min(xs)
	if err != nil {
		return 0, err
	}
	if min < 0 {
		return 0, errors.New("stats: relative spread requires non-negative samples")
	}
	if min < minNormal {
		// Zero/denormal baseline: the ratio is undefined. All-zero
		// samples legitimately have no spread; anything else is a
		// degenerate measurement the caller must handle. (The max, not
		// the MAD, is the discriminator: [0, t, 0, t, t] has MAD 0 yet
		// plainly disperses.)
		if max, err := Max(xs); err == nil && max < minNormal {
			return 0, nil
		}
		return 0, ErrZeroMedian
	}
	med, _ := Median(xs)
	return (med - min) / min, nil
}

// LinearFit holds the result of a least-squares line fit y = Slope*x +
// Intercept, with R2 the coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine performs an ordinary least-squares fit of ys against xs.
// The slices must be the same length and contain at least two points.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched fit inputs")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: fit requires at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit (constant x)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R^2 = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// SpearmanRank returns Spearman's rank correlation coefficient between
// xs and ys: +1 when the two series rank their elements identically,
// -1 when exactly opposite. It is the suite's measure of *shape*
// agreement between the paper's table and a regenerated one — who
// wins and who loses, independent of absolute values. Ties receive
// fractional (average) ranks.
func SpearmanRank(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched rank inputs")
	}
	if len(xs) < 3 {
		return 0, errors.New("stats: rank correlation requires at least three pairs")
	}
	rx := ranks(xs)
	ry := ranks(ys)
	fit, err := pearson(rx, ry)
	if err != nil {
		return 0, err
	}
	return fit, nil
}

// ranks assigns average ranks (1-based) to the values.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// pearson computes the Pearson correlation of two equal-length series.
func pearson(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range xs {
		a, b := xs[i]-mx, ys[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0, errors.New("stats: degenerate correlation (constant series)")
	}
	return num / math.Sqrt(dx*dy), nil
}

// Plateau describes one flat region detected in a curve: the half-open
// index range [Start, End) of the input points it covers and the
// representative (median) level of the region.
type Plateau struct {
	Start, End int
	Level      float64
}

// Plateaus segments ys into flat regions. Two consecutive points belong
// to the same plateau when they differ by no more than relTol of the
// running plateau level (with absTol as a floor for near-zero levels).
// This is the primitive behind the Table-6 extraction: the memory
// latency curve is a staircase whose steps are the cache levels.
//
// Tolerance semantics are pinned: a zero tolerance means exact
// equality, and negative or NaN tolerances clamp to zero rather than
// silently flipping the comparison (a negative tol would make even
// identical points "differ", splitting every sample into its own
// plateau; before clamping, so would a descending curve, because the
// raw product level*relTol went negative with the level). The relative
// tolerance is taken against the magnitude of the running level, so
// descending or negative-valued series segment the same way their
// mirror images do. A single-point series is one plateau at that value.
func Plateaus(ys []float64, relTol, absTol float64) []Plateau {
	if len(ys) == 0 {
		return nil
	}
	relTol = clampTol(relTol)
	absTol = clampTol(absTol)
	var out []Plateau
	start := 0
	level := ys[0]
	count := 1.0
	for i := 1; i < len(ys); i++ {
		tol := math.Abs(level) * relTol
		if tol < absTol {
			tol = absTol
		}
		if math.Abs(ys[i]-level) <= tol {
			// Extend the plateau, tracking the running mean as level.
			level = (level*count + ys[i]) / (count + 1)
			count++
			continue
		}
		out = append(out, Plateau{Start: start, End: i, Level: level})
		start = i
		level = ys[i]
		count = 1
	}
	out = append(out, Plateau{Start: start, End: len(ys), Level: level})
	return out
}

// clampTol normalizes a caller-supplied tolerance the way
// Options.Normalize treats its knobs: out-of-domain values are not
// allowed to change the comparison's meaning. Negative and NaN
// tolerances clamp to 0 (exact equality), the strictest valid setting.
func clampTol(tol float64) float64 {
	if math.IsNaN(tol) || tol < 0 {
		return 0
	}
	return tol
}

// MergePlateaus coalesces adjacent plateaus whose levels are within
// relTol of each other; the merged level is the length-weighted mean.
// Useful after Plateaus when noise split one logical step in two.
// relTol follows the same clamping rule as Plateaus: zero means exact
// equality, negative/NaN clamp to zero.
func MergePlateaus(ps []Plateau, relTol float64) []Plateau {
	if len(ps) == 0 {
		return nil
	}
	relTol = clampTol(relTol)
	out := []Plateau{ps[0]}
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		ref := math.Max(math.Abs(last.Level), math.Abs(p.Level))
		if math.Abs(p.Level-last.Level) <= ref*relTol {
			wa := float64(last.End - last.Start)
			wb := float64(p.End - p.Start)
			last.Level = (last.Level*wa + p.Level*wb) / (wa + wb)
			last.End = p.End
			continue
		}
		out = append(out, p)
	}
	return out
}
