package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMinMaxEmpty(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2.5}
	if m, _ := Min(xs); m != -1 {
		t.Errorf("Min = %v, want -1", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v; want 2.5", m, err)
	}
}

func TestHarmonicMean(t *testing.T) {
	// Harmonic mean of 40 and 60 MB/s over equal byte counts is 48.
	m, err := HarmonicMean([]float64{40, 60})
	if err != nil || !almostEq(m, 48, 1e-12) {
		t.Errorf("HarmonicMean = %v, %v; want 48", m, err)
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("HarmonicMean with zero sample should error")
	}
	if _, err := HarmonicMean(nil); err != ErrEmpty {
		t.Error("HarmonicMean(nil) should return ErrEmpty")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	sd, _ := StdDev(xs)
	if !almostEq(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", sd)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of single sample should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if v, _ := Percentile([]float64{42}, 75); v != 42 {
		t.Errorf("single-sample percentile = %v, want 42", v)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFitLineExact(t *testing.T) {
	// y = 2x + 1 exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("fit of one point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("constant x should error")
	}
}

func TestPlateausStaircase(t *testing.T) {
	// A three-step staircase like a memory-latency curve:
	// L1 at ~5ns, L2 at ~50ns, memory at ~300ns.
	ys := []float64{5, 5.1, 4.9, 5, 50, 51, 49.5, 50, 300, 305, 295}
	ps := Plateaus(ys, 0.10, 0.5)
	ps = MergePlateaus(ps, 0.15)
	if len(ps) != 3 {
		t.Fatalf("got %d plateaus (%v), want 3", len(ps), ps)
	}
	wantLevels := []float64{5, 50, 300}
	for i, p := range ps {
		if math.Abs(p.Level-wantLevels[i])/wantLevels[i] > 0.05 {
			t.Errorf("plateau %d level %v, want ~%v", i, p.Level, wantLevels[i])
		}
	}
	// Coverage must be exact and contiguous.
	if ps[0].Start != 0 || ps[len(ps)-1].End != len(ys) {
		t.Errorf("plateaus do not cover input: %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Start != ps[i-1].End {
			t.Errorf("gap between plateaus %d and %d", i-1, i)
		}
	}
}

func TestPlateausEmptyAndSingle(t *testing.T) {
	if ps := Plateaus(nil, 0.1, 0.1); ps != nil {
		t.Errorf("Plateaus(nil) = %v, want nil", ps)
	}
	ps := Plateaus([]float64{7}, 0.1, 0.1)
	if len(ps) != 1 || ps[0].Level != 7 {
		t.Errorf("single-point plateaus = %v", ps)
	}
	if MergePlateaus(nil, 0.1) != nil {
		t.Error("MergePlateaus(nil) should be nil")
	}
}

// Property: Min <= Percentile(p) <= Max for any sample set and p.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		v, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return v >= mn-1e-9 && v <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotonic in p.
func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, _ := Percentile(xs, pa)
		vb, _ := Percentile(xs, pb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: harmonic mean <= arithmetic mean for positive samples.
func TestQuickHarmonicLEArithmetic(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v)+1) // strictly positive
		}
		if len(xs) == 0 {
			return true
		}
		hm, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		am, _ := Mean(xs)
		return hm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Plateaus always partitions the input exactly.
func TestQuickPlateausPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		ys := make([]float64, len(raw))
		for i, v := range raw {
			ys[i] = float64(v)
		}
		ps := Plateaus(ys, 0.1, 1)
		if len(ys) == 0 {
			return ps == nil
		}
		if ps[0].Start != 0 || ps[len(ps)-1].End != len(ys) {
			return false
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Start != ps[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FitLine on noisy-but-linear data recovers the slope.
func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 10 + rng.NormFloat64()*0.5
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.05 {
		t.Errorf("slope = %v, want ~3", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestMedianOddEven(t *testing.T) {
	odd := []float64{9, 1, 5}
	if m, _ := Median(odd); m != 5 {
		t.Errorf("odd median = %v, want 5", m)
	}
	even := []float64{1, 2, 3, 4}
	if m, _ := Median(even); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
	// Ensure sortedness is not assumed.
	shuffled := []float64{4, 1, 3, 2}
	sort.Float64s(shuffled) // sanity for the test itself
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("shuffled median = %v, want 2.5", m)
	}
}

func TestSpearmanRank(t *testing.T) {
	// Perfectly concordant.
	r, err := SpearmanRank([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if err != nil || r != 1 {
		t.Errorf("concordant rank = %v, %v; want 1", r, err)
	}
	// Perfectly discordant.
	r, _ = SpearmanRank([]float64{1, 2, 3, 4}, []float64{9, 7, 5, 3})
	if r != -1 {
		t.Errorf("discordant rank = %v, want -1", r)
	}
	// Monotone transform leaves rank correlation at 1.
	xs := []float64{5, 1, 9, 3, 7}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x // monotone on positives
	}
	r, _ = SpearmanRank(xs, ys)
	if r != 1 {
		t.Errorf("monotone-transform rank = %v, want 1", r)
	}
	// Errors.
	if _, err := SpearmanRank([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few pairs should error")
	}
	if _, err := SpearmanRank([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant series should error")
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks; correlation stays defined and high for
	// a mostly-concordant series.
	r, err := SpearmanRank([]float64{1, 2, 2, 4}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("tied rank = %v, want ~1", r)
	}
}

// Property: SpearmanRank is symmetric and bounded in [-1, 1].
func TestQuickSpearmanBounds(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		allSameX, allSameY := true, true
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v % 7)
			if xs[i] != xs[0] {
				allSameX = false
			}
			if ys[i] != ys[0] {
				allSameY = false
			}
		}
		if allSameX || allSameY {
			return true
		}
		ab, err1 := SpearmanRank(xs, ys)
		ba, err2 := SpearmanRank(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab >= -1.000001 && ab <= 1.000001 && math.Abs(ab-ba) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMAD(t *testing.T) {
	if _, err := MAD(nil); err == nil {
		t.Error("MAD of empty set should fail")
	}
	got, err := MAD([]float64{1, 2, 3, 4, 5})
	if err != nil || got != 1 {
		t.Errorf("MAD(1..5) = %v, %v, want 1", got, err)
	}
	// MAD shrugs off one wild outlier where StdDev explodes.
	got, err = MAD([]float64{10, 10, 10, 10, 1000})
	if err != nil || got != 0 {
		t.Errorf("MAD with outlier = %v, %v, want 0", got, err)
	}
}

func TestRelSpread(t *testing.T) {
	if _, err := RelSpread(nil); err == nil {
		t.Error("RelSpread of empty set should fail")
	}
	if _, err := RelSpread([]float64{0, 1}); err == nil {
		t.Error("RelSpread with non-positive min should fail")
	}
	// Identical samples: the min is perfectly supported.
	got, err := RelSpread([]float64{5, 5, 5})
	if err != nil || got != 0 {
		t.Errorf("RelSpread(5,5,5) = %v, %v, want 0", got, err)
	}
	// Median 15 vs min 10: spread 0.5.
	got, err = RelSpread([]float64{10, 15, 20})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelSpread(10,15,20) = %v, %v, want 0.5", got, err)
	}
}

// TestRelSpreadDegenerate pins the quality-gate contract for samples a
// fault-injected or quantized clock can produce: the result is always
// finite, all-identical zero samples have spread exactly 0, and a
// zero/denormal baseline with real dispersion is the typed
// ErrZeroMedian rather than NaN/Inf or a generic failure.
func TestRelSpreadDegenerate(t *testing.T) {
	// A clock that never ticked: every sample is zero. RSD := 0 —
	// this is a legitimate (degenerate but quiet) measurement, not an
	// error.
	got, err := RelSpread([]float64{0, 0, 0, 0})
	if err != nil || got != 0 {
		t.Errorf("RelSpread(0,0,0,0) = %v, %v, want 0, nil", got, err)
	}
	// Zero baseline under larger samples: relative spread is undefined;
	// the typed error lets the gate treat the measurement as degenerate.
	_, err = RelSpread([]float64{0, 1e6, 2e6})
	if !errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(0,1e6,2e6) error = %v, want ErrZeroMedian", err)
	}
	// The MAD cannot be the discriminator: this set has MAD 0 (three of
	// five samples sit on the median) yet plainly disperses, so it is
	// degenerate, not quiet.
	_, err = RelSpread([]float64{0, 10, 0, 10, 10})
	if !errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(0,10,0,10,10) error = %v, want ErrZeroMedian", err)
	}
	// Denormal baseline: same story — the division would overflow.
	_, err = RelSpread([]float64{5e-324, 1, 2})
	if !errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(denormal,1,2) error = %v, want ErrZeroMedian", err)
	}
	// Negative samples are still rejected outright (durations cannot be
	// negative) and never reach the degenerate path.
	if _, err := RelSpread([]float64{-1, 0, 1}); err == nil || errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(-1,0,1) error = %v, want a non-typed rejection", err)
	}
	// Every defined result must be finite.
	for _, xs := range [][]float64{{0, 0, 0}, {1, 1, 1}, {1, 2, 3}, {minNormal, 1}} {
		if got, err := RelSpread(xs); err == nil && (math.IsNaN(got) || math.IsInf(got, 0)) {
			t.Errorf("RelSpread(%v) = %v, want finite", xs, got)
		}
	}
}
