package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMinMaxEmpty(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2.5}
	if m, _ := Min(xs); m != -1 {
		t.Errorf("Min = %v, want -1", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v; want 2.5", m, err)
	}
}

func TestHarmonicMean(t *testing.T) {
	// Harmonic mean of 40 and 60 MB/s over equal byte counts is 48.
	m, err := HarmonicMean([]float64{40, 60})
	if err != nil || !almostEq(m, 48, 1e-12) {
		t.Errorf("HarmonicMean = %v, %v; want 48", m, err)
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("HarmonicMean with zero sample should error")
	}
	if _, err := HarmonicMean(nil); err != ErrEmpty {
		t.Error("HarmonicMean(nil) should return ErrEmpty")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	sd, _ := StdDev(xs)
	if !almostEq(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", sd)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of single sample should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if v, _ := Percentile([]float64{42}, 75); v != 42 {
		t.Errorf("single-sample percentile = %v, want 42", v)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFitLineExact(t *testing.T) {
	// y = 2x + 1 exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("fit of one point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("constant x should error")
	}
}

func TestPlateausStaircase(t *testing.T) {
	// A three-step staircase like a memory-latency curve:
	// L1 at ~5ns, L2 at ~50ns, memory at ~300ns.
	ys := []float64{5, 5.1, 4.9, 5, 50, 51, 49.5, 50, 300, 305, 295}
	ps := Plateaus(ys, 0.10, 0.5)
	ps = MergePlateaus(ps, 0.15)
	if len(ps) != 3 {
		t.Fatalf("got %d plateaus (%v), want 3", len(ps), ps)
	}
	wantLevels := []float64{5, 50, 300}
	for i, p := range ps {
		if math.Abs(p.Level-wantLevels[i])/wantLevels[i] > 0.05 {
			t.Errorf("plateau %d level %v, want ~%v", i, p.Level, wantLevels[i])
		}
	}
	// Coverage must be exact and contiguous.
	if ps[0].Start != 0 || ps[len(ps)-1].End != len(ys) {
		t.Errorf("plateaus do not cover input: %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Start != ps[i-1].End {
			t.Errorf("gap between plateaus %d and %d", i-1, i)
		}
	}
}

func TestPlateausEmptyAndSingle(t *testing.T) {
	if ps := Plateaus(nil, 0.1, 0.1); ps != nil {
		t.Errorf("Plateaus(nil) = %v, want nil", ps)
	}
	ps := Plateaus([]float64{7}, 0.1, 0.1)
	if len(ps) != 1 || ps[0].Level != 7 {
		t.Errorf("single-point plateaus = %v", ps)
	}
	if MergePlateaus(nil, 0.1) != nil {
		t.Error("MergePlateaus(nil) should be nil")
	}
}

// Property: Min <= Percentile(p) <= Max for any sample set and p.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		v, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return v >= mn-1e-9 && v <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotonic in p.
func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, _ := Percentile(xs, pa)
		vb, _ := Percentile(xs, pb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: harmonic mean <= arithmetic mean for positive samples.
func TestQuickHarmonicLEArithmetic(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v)+1) // strictly positive
		}
		if len(xs) == 0 {
			return true
		}
		hm, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		am, _ := Mean(xs)
		return hm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Plateaus always partitions the input exactly.
func TestQuickPlateausPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		ys := make([]float64, len(raw))
		for i, v := range raw {
			ys[i] = float64(v)
		}
		ps := Plateaus(ys, 0.1, 1)
		if len(ys) == 0 {
			return ps == nil
		}
		if ps[0].Start != 0 || ps[len(ps)-1].End != len(ys) {
			return false
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Start != ps[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FitLine on noisy-but-linear data recovers the slope.
func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 10 + rng.NormFloat64()*0.5
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.05 {
		t.Errorf("slope = %v, want ~3", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestMedianOddEven(t *testing.T) {
	odd := []float64{9, 1, 5}
	if m, _ := Median(odd); m != 5 {
		t.Errorf("odd median = %v, want 5", m)
	}
	even := []float64{1, 2, 3, 4}
	if m, _ := Median(even); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
	// Ensure sortedness is not assumed.
	shuffled := []float64{4, 1, 3, 2}
	sort.Float64s(shuffled) // sanity for the test itself
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("shuffled median = %v, want 2.5", m)
	}
}

func TestSpearmanRank(t *testing.T) {
	// Perfectly concordant.
	r, err := SpearmanRank([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if err != nil || r != 1 {
		t.Errorf("concordant rank = %v, %v; want 1", r, err)
	}
	// Perfectly discordant.
	r, _ = SpearmanRank([]float64{1, 2, 3, 4}, []float64{9, 7, 5, 3})
	if r != -1 {
		t.Errorf("discordant rank = %v, want -1", r)
	}
	// Monotone transform leaves rank correlation at 1.
	xs := []float64{5, 1, 9, 3, 7}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x // monotone on positives
	}
	r, _ = SpearmanRank(xs, ys)
	if r != 1 {
		t.Errorf("monotone-transform rank = %v, want 1", r)
	}
	// Errors.
	if _, err := SpearmanRank([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few pairs should error")
	}
	if _, err := SpearmanRank([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant series should error")
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks; correlation stays defined and high for
	// a mostly-concordant series.
	r, err := SpearmanRank([]float64{1, 2, 2, 4}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("tied rank = %v, want ~1", r)
	}
}

// Property: SpearmanRank is symmetric and bounded in [-1, 1].
func TestQuickSpearmanBounds(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		allSameX, allSameY := true, true
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v % 7)
			if xs[i] != xs[0] {
				allSameX = false
			}
			if ys[i] != ys[0] {
				allSameY = false
			}
		}
		if allSameX || allSameY {
			return true
		}
		ab, err1 := SpearmanRank(xs, ys)
		ba, err2 := SpearmanRank(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab >= -1.000001 && ab <= 1.000001 && math.Abs(ab-ba) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMAD(t *testing.T) {
	if _, err := MAD(nil); err == nil {
		t.Error("MAD of empty set should fail")
	}
	got, err := MAD([]float64{1, 2, 3, 4, 5})
	if err != nil || got != 1 {
		t.Errorf("MAD(1..5) = %v, %v, want 1", got, err)
	}
	// MAD shrugs off one wild outlier where StdDev explodes.
	got, err = MAD([]float64{10, 10, 10, 10, 1000})
	if err != nil || got != 0 {
		t.Errorf("MAD with outlier = %v, %v, want 0", got, err)
	}
}

func TestRelSpread(t *testing.T) {
	if _, err := RelSpread(nil); err == nil {
		t.Error("RelSpread of empty set should fail")
	}
	if _, err := RelSpread([]float64{0, 1}); err == nil {
		t.Error("RelSpread with non-positive min should fail")
	}
	// Identical samples: the min is perfectly supported.
	got, err := RelSpread([]float64{5, 5, 5})
	if err != nil || got != 0 {
		t.Errorf("RelSpread(5,5,5) = %v, %v, want 0", got, err)
	}
	// Median 15 vs min 10: spread 0.5.
	got, err = RelSpread([]float64{10, 15, 20})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelSpread(10,15,20) = %v, %v, want 0.5", got, err)
	}
}

// TestRelSpreadDegenerate pins the quality-gate contract for samples a
// fault-injected or quantized clock can produce: the result is always
// finite, all-identical zero samples have spread exactly 0, and a
// zero/denormal baseline with real dispersion is the typed
// ErrZeroMedian rather than NaN/Inf or a generic failure.
func TestRelSpreadDegenerate(t *testing.T) {
	// A clock that never ticked: every sample is zero. RSD := 0 —
	// this is a legitimate (degenerate but quiet) measurement, not an
	// error.
	got, err := RelSpread([]float64{0, 0, 0, 0})
	if err != nil || got != 0 {
		t.Errorf("RelSpread(0,0,0,0) = %v, %v, want 0, nil", got, err)
	}
	// Zero baseline under larger samples: relative spread is undefined;
	// the typed error lets the gate treat the measurement as degenerate.
	_, err = RelSpread([]float64{0, 1e6, 2e6})
	if !errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(0,1e6,2e6) error = %v, want ErrZeroMedian", err)
	}
	// The MAD cannot be the discriminator: this set has MAD 0 (three of
	// five samples sit on the median) yet plainly disperses, so it is
	// degenerate, not quiet.
	_, err = RelSpread([]float64{0, 10, 0, 10, 10})
	if !errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(0,10,0,10,10) error = %v, want ErrZeroMedian", err)
	}
	// Denormal baseline: same story — the division would overflow.
	_, err = RelSpread([]float64{5e-324, 1, 2})
	if !errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(denormal,1,2) error = %v, want ErrZeroMedian", err)
	}
	// Negative samples are still rejected outright (durations cannot be
	// negative) and never reach the degenerate path.
	if _, err := RelSpread([]float64{-1, 0, 1}); err == nil || errors.Is(err, ErrZeroMedian) {
		t.Errorf("RelSpread(-1,0,1) error = %v, want a non-typed rejection", err)
	}
	// Every defined result must be finite.
	for _, xs := range [][]float64{{0, 0, 0}, {1, 1, 1}, {1, 2, 3}, {minNormal, 1}} {
		if got, err := RelSpread(xs); err == nil && (math.IsNaN(got) || math.IsInf(got, 0)) {
			t.Errorf("RelSpread(%v) = %v, want finite", xs, got)
		}
	}
}

// The planner's stopping rule evaluates percentiles of refinement
// windows that can be a single sample or carry a NaN from a degenerate
// probe; these edges are pinned, not left to sort/float behavior.
func TestPercentileEdges(t *testing.T) {
	// p=0 and p=100 are exactly the extremes, no interpolation drift.
	xs := []float64{0.1 + 0.2, 0.3, 7, -4} // 0.1+0.2 != 0.3 in floats
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if v, err := Percentile(xs, 0); err != nil || v != mn {
		t.Errorf("Percentile(p=0) = %v, %v; want exact min %v", v, err, mn)
	}
	if v, err := Percentile(xs, 100); err != nil || v != mx {
		t.Errorf("Percentile(p=100) = %v, %v; want exact max %v", v, err, mx)
	}
	// Single sample: every p returns the sample.
	for _, p := range []float64{0, 13.7, 50, 100} {
		if v, err := Percentile([]float64{42}, p); err != nil || v != 42 {
			t.Errorf("single-sample Percentile(p=%v) = %v, %v; want 42", p, v, err)
		}
	}
	// NaN p must be rejected: it fails no ordered comparison, so the
	// old range check let it through to a garbage rank.
	if _, err := Percentile(xs, math.NaN()); err == nil {
		t.Error("Percentile(NaN p) should error")
	}
	// NaN samples are rejected with the typed error, like results.DB.Add.
	for _, bad := range [][]float64{
		{math.NaN()},
		{1, math.NaN(), 3},
		{math.NaN(), math.NaN()},
	} {
		if _, err := Percentile(bad, 50); !errors.Is(err, ErrNaN) {
			t.Errorf("Percentile(%v) error = %v, want ErrNaN", bad, err)
		}
	}
	// Median and MAD ride on Percentile and inherit the rejection.
	if _, err := Median([]float64{math.NaN(), 1}); !errors.Is(err, ErrNaN) {
		t.Errorf("Median(NaN,1) error = %v, want ErrNaN", err)
	}
	if _, err := MAD([]float64{math.NaN(), 1}); !errors.Is(err, ErrNaN) {
		t.Errorf("MAD(NaN,1) error = %v, want ErrNaN", err)
	}
}

// Property: P0/P100 equal Min/Max exactly (not approximately) for any
// NaN-free sample set.
func TestQuickPercentileExtremes(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p0, e0 := Percentile(xs, 0)
		p100, e100 := Percentile(xs, 100)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return e0 == nil && e100 == nil && p0 == mn && p100 == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Zero, negative and NaN tolerances have pinned semantics: zero means
// exact equality; negative and NaN clamp to zero instead of inverting
// the comparison (a negative tol classified even identical neighbors
// as different).
func TestPlateausToleranceClamping(t *testing.T) {
	ys := []float64{5, 5, 5, 7, 7}
	want := []Plateau{{Start: 0, End: 3, Level: 5}, {Start: 3, End: 5, Level: 7}}
	for _, tol := range []struct{ rel, abs float64 }{
		{0, 0},
		{-0.25, -2},
		{math.NaN(), math.NaN()},
		{-1e300, 0},
	} {
		ps := Plateaus(ys, tol.rel, tol.abs)
		if len(ps) != len(want) {
			t.Fatalf("Plateaus(tol=%+v) = %v, want %v", tol, ps, want)
		}
		for i := range want {
			if ps[i] != want[i] {
				t.Errorf("Plateaus(tol=%+v)[%d] = %+v, want %+v", tol, i, ps[i], want[i])
			}
		}
	}
	// MergePlateaus: negative/NaN relTol merges only exactly-equal levels.
	ps := []Plateau{{0, 2, 10}, {2, 4, 10}, {4, 6, 11}}
	for _, rel := range []float64{0, -0.3, math.NaN()} {
		got := MergePlateaus(ps, rel)
		if len(got) != 2 || got[0] != (Plateau{0, 4, 10}) || got[1] != (Plateau{4, 6, 11}) {
			t.Errorf("MergePlateaus(relTol=%v) = %v, want exact-equality merge", rel, got)
		}
	}
}

// A descending (or negative-valued) staircase must segment like its
// ascending mirror: the relative tolerance is taken against the level's
// magnitude, where the raw product level*relTol used to go negative.
func TestPlateausDescendingAndNegative(t *testing.T) {
	up := []float64{5, 5.1, 4.9, 50, 51, 49, 300, 305, 295}
	down := make([]float64, len(up))
	neg := make([]float64, len(up))
	for i, v := range up {
		down[len(up)-1-i] = v
		neg[i] = -v
	}
	nUp := len(Plateaus(up, 0.10, 0.5))
	if nDown := len(Plateaus(down, 0.10, 0.5)); nDown != nUp {
		t.Errorf("descending staircase: %d plateaus, ascending %d", nDown, nUp)
	}
	if nNeg := len(Plateaus(neg, 0.10, 0.5)); nNeg != nUp {
		t.Errorf("negated staircase: %d plateaus, ascending %d", nNeg, nUp)
	}
}

// A monotone ramp — what the planner's coarse pass sees across a
// hierarchy transition — must still partition the input contiguously
// even though running-mean chaining can stretch plateaus along the
// slope; and with zero tolerance every distinct sample is its own
// plateau.
func TestPlateausMonotoneRamp(t *testing.T) {
	ramp := make([]float64, 32)
	for i := range ramp {
		ramp[i] = float64(i * i)
	}
	ps := Plateaus(ramp, 0.25, 2)
	if ps[0].Start != 0 || ps[len(ps)-1].End != len(ramp) {
		t.Fatalf("ramp plateaus do not cover input: %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Start != ps[i-1].End {
			t.Fatalf("gap between ramp plateaus %d and %d", i-1, i)
		}
	}
	exact := Plateaus([]float64{1, 2, 3, 4}, 0, 0)
	if len(exact) != 4 {
		t.Errorf("zero-tolerance ramp: %d plateaus, want one per distinct sample", len(exact))
	}
	// Single-point series: one plateau covering the point, any tol.
	one := Plateaus([]float64{-3}, -1, math.NaN())
	if len(one) != 1 || one[0] != (Plateau{0, 1, -3}) {
		t.Errorf("single-point plateaus = %v", one)
	}
}
