package store

// Corrupt-shard fuzz targets. The store's on-disk shards — manifest
// JSON files and content-addressed database objects — and its network
// ingest stream are the three places arbitrary bytes can reach the
// daemon. None of them may panic it, and anything a reader accepts
// must re-serialize to a fixed point (the property content addressing
// stands on).

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/results"
)

// FuzzManifestShard writes arbitrary bytes where a manifest belongs
// and lists the store: never a panic, and an accepted shard must
// survive a write → read round trip unchanged.
func FuzzManifestShard(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"run_id":"x","content_hash":"y","machines":["m"]}`))
	f.Add([]byte(`{"run_id":"`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// The shard name must match the manifest's claimed run ID for
		// runs() to accept it; derive it when the data parses.
		name := "0000000000000000000000000000000000000000000000000000000000000000"
		var m Manifest
		if json.Unmarshal(data, &m) == nil && m.RunID != "" {
			name = m.RunID
		}
		if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
			// Keep the fuzzer from planting files outside the temp dir;
			// the store itself never writes attacker-named shards (run
			// IDs are hashes it computes).
			return
		}
		path := filepath.Join(dir, "runs", name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return
		}
		runs, err := s.Runs()
		if err != nil {
			return // corrupt shard rejected: fine
		}
		for _, got := range runs {
			// Accepted: re-serialize and re-read; the manifest must be
			// a fixed point.
			enc, err := json.Marshal(got)
			if err != nil {
				t.Fatalf("accepted manifest does not re-encode: %v", err)
			}
			var back Manifest
			if err := json.Unmarshal(enc, &back); err != nil {
				t.Fatalf("re-encoded manifest does not parse: %v", err)
			}
			enc2, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("manifest re-encoding is not a fixed point:\n%s\n%s", enc, enc2)
			}
		}
	})
}

// FuzzObjectShard plants arbitrary bytes as a run's database object:
// DB() must either reject it (hash check, decoder) or — when handed
// the matching hash — produce a database whose canonical encoding is a
// fixed point.
func FuzzObjectShard(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("# lmbench-go results v1\n"))
	f.Add([]byte("# lmbench-go results v1\nentry \"b\" \"m\" \"ns\" 1\nend\n"))
	f.Add([]byte("entry \"b\" \"m\" \"ns\" NaN\nend\n"))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Store a real run, then corrupt its object in place.
		m, err := s.Put(Manifest{Machines: []string{"m"}, Options: "{}", CodeVersion: "fuzz"},
			mustDB(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.objectPath(m.ContentHash), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, db, err := s.DB(m.RunID)
		if err != nil {
			return // rejected: hash mismatch or decode failure
		}
		// Only reachable when data hashes to m.ContentHash (i.e. is the
		// original encoding): then the round trip must be exact.
		enc, _, err := EncodeDB(db)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted object is not an encode fixed point")
		}
	})
}

// FuzzIngestStream feeds arbitrary bytes to a publish session: the
// daemon must answer with a frame (or tear down) without panicking,
// and must never store a run from a stream that did not complete the
// protocol.
func FuzzIngestStream(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\x00\x00\x00\x04ouch"))
	f.Add([]byte("\x80\x00\x00\x02{}"))
	// A valid publish frame followed by garbage.
	var valid bytes.Buffer
	_ = writeIngest(&valid, &ingestMsg{Type: msgPublish, V: ingestVersion, Machines: []string{"m"}})
	f.Add(valid.Bytes())
	f.Add(append(append([]byte{}, valid.Bytes()...), 0xff, 0xff, 0xff, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		var resp bytes.Buffer
		HandleSession(bytes.NewReader(data), &resp, s)
		runs, err := s.Runs()
		if err != nil {
			t.Fatalf("store unreadable after fuzzed session: %v", err)
		}
		for _, m := range runs {
			// A stored run can only come from a complete, hash-checked
			// session; verify its object really decodes.
			if _, _, err := s.DB(m.RunID); err != nil {
				t.Fatalf("fuzzed session stored an unreadable run: %v", err)
			}
		}
	})
}

func mustDB(t *testing.T) *results.DB {
	t.Helper()
	db := &results.DB{}
	if err := db.Add(results.Entry{Benchmark: "b", Machine: "m", Unit: "ns", Scalar: 1}); err != nil {
		t.Fatal(err)
	}
	return db
}
