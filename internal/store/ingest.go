package store

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/rpcx"
)

// The ingestion protocol: how runs reach a store daemon. It reuses the
// fleet's wire discipline — JSON messages, record-framed with
// internal/rpcx's RFC-1831 marking — so a fleet coordinator or a local
// run streams its database to `lmbench -store-listen` with the same
// framing code that moved the fragments between workers in the first
// place.
//
// One publish is a session:
//
//	→ publish   {label, machines, options, code_version}
//	→ fragment  {entries: [...]}        (zero or more, any order)
//	→ commit    {content_hash}          (publisher's local hash)
//	← published {run_id, content_hash, seq}   or   error {error}
//
// The daemon re-assembles the fragments into a database, encodes it
// canonically, and verifies it landed on the publisher's content hash
// before storing — an end-to-end integrity check that also proves the
// canonical encoding makes fragment arrival order irrelevant.

// ingestVersion guards the ingestion wire protocol.
const ingestVersion = 1

// maxFrameBytes bounds one ingest frame; a Figure-1 series fragment
// with quality attrs is a few hundred KB, so 16MB is far from real
// traffic while still refusing a corrupt length prefix.
const maxFrameBytes = 16 << 20

// fragmentEntries is how many entries a publishing client packs per
// fragment frame.
const fragmentEntries = 64

// Ingest message types.
const (
	msgPublish   = "publish"
	msgFragment  = "fragment"
	msgCommit    = "commit"
	msgPublished = "published"
	msgError     = "error"
)

// ingestMsg is one protocol frame.
type ingestMsg struct {
	Type string `json:"type"`
	V    int    `json:"v,omitempty"`

	// publish fields.
	Label       string   `json:"label,omitempty"`
	Machines    []string `json:"machines,omitempty"`
	Options     string   `json:"options,omitempty"`
	CodeVersion string   `json:"code_version,omitempty"`

	// fragment payload. Entries round-trip exactly: encoding/json
	// writes float64s in shortest form that parses back to the same
	// bits.
	Entries []results.Entry `json:"entries,omitempty"`

	// commit / published fields.
	ContentHash string `json:"content_hash,omitempty"`
	RunID       string `json:"run_id,omitempty"`
	Seq         int64  `json:"seq,omitempty"`

	// error field.
	Err string `json:"error,omitempty"`
}

func writeIngest(w io.Writer, m *ingestMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", m.Type, err)
	}
	return rpcx.WriteFrame(w, b)
}

func readIngest(r io.Reader) (*ingestMsg, error) {
	b, err := rpcx.ReadFrame(r, maxFrameBytes)
	if err != nil {
		return nil, err
	}
	var m ingestMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: decode frame: %w", err)
	}
	return &m, nil
}

// IngestOptions tunes the daemon side of the ingest loop. The zero
// value selects production defaults.
type IngestOptions struct {
	// IdleTimeout is the per-read idle deadline on a session
	// connection: a connect-then-silent peer fails its next read in
	// this long instead of holding a daemon goroutine forever.
	// Default 30s; negative disables.
	IdleTimeout time.Duration
	// WriteTimeout is the per-write deadline. Default 30s; negative
	// disables.
	WriteTimeout time.Duration
	// DrainTimeout bounds the graceful drain after ctx is cancelled:
	// the listener closes immediately, in-flight sessions get this
	// long to finish their commit, then their connections are
	// force-closed. Default 10s; negative drains without forcing.
	DrainTimeout time.Duration
	// WrapConn, when set, wraps every accepted connection — the chaos
	// seam (netfaults installs its injector here).
	WrapConn func(net.Conn) net.Conn
	// Registry, when set, counts sessions and failures as
	// lmbench_store_ingest_* families.
	Registry *obs.Registry
	// Logf, when set, receives one line per failed session.
	Logf func(format string, args ...any)
}

func (o IngestOptions) normalize() IngestOptions {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// Serve accepts publish sessions on ln until ctx is cancelled, with
// default options. Each connection is one session; sessions run
// concurrently (Put serializes the final store write). This is the
// loop behind `lmbench -store-listen`.
func Serve(ctx context.Context, ln net.Listener, s *Store) error {
	return ServeIngest(ctx, ln, s, IngestOptions{})
}

// ServeIngest is Serve with explicit options. On ctx cancellation it
// drains gracefully — stops accepting, lets in-flight commits finish
// (bounded by DrainTimeout), waits for every session goroutine — and
// returns nil.
func ServeIngest(ctx context.Context, ln net.Listener, s *Store, o IngestOptions) error {
	o = o.normalize()
	var sessions, failures *obs.Counter
	if o.Registry != nil {
		sessions = o.Registry.Counter("lmbench_store_ingest_sessions_total",
			"Publish sessions accepted by the ingest listener.")
		failures = o.Registry.Counter("lmbench_store_ingest_failures_total",
			"Publish sessions that ended in an error reply or wire failure.")
	}

	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		wg    sync.WaitGroup
	)
	stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break // drain
			}
			return err
		}
		if o.WrapConn != nil {
			conn = o.WrapConn(conn)
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				_ = conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			if sessions != nil {
				sessions.Add(1)
			}
			c := rpcx.WithDeadlines(conn, o.IdleTimeout, o.WriteTimeout)
			if err := handleSession(c, c, s); err != nil {
				if failures != nil {
					failures.Add(1)
				}
				if o.Logf != nil {
					o.Logf("store: ingest session from %s failed: %v", conn.RemoteAddr(), err)
				}
			}
		}()
	}

	// Drain: give in-flight sessions DrainTimeout to land their
	// commits, then cut them off.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var force <-chan time.Time
	if o.DrainTimeout > 0 {
		t := time.NewTimer(o.DrainTimeout)
		defer t.Stop()
		force = t.C
	}
	select {
	case <-done:
	case <-force:
		mu.Lock()
		for c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		<-done
	}
	return nil
}

// HandleSession runs one publish session over an arbitrary
// reader/writer pair — exported for tests and for piping a session
// over transports other than TCP.
func HandleSession(r io.Reader, w io.Writer, s *Store) { _ = handleSession(r, w, s) }

// handleSession consumes one publish session and replies with exactly
// one published or error frame. A malformed session never panics; the
// reply (or the connection teardown) carries the failure, and the
// returned error mirrors it for the daemon's accounting.
func handleSession(r io.Reader, w io.Writer, s *Store) error {
	br := bufio.NewReader(r)
	fail := func(err error) error {
		_ = writeIngest(w, &ingestMsg{Type: msgError, Err: err.Error()})
		return err
	}

	first, err := readIngest(br)
	if err != nil {
		return fail(fmt.Errorf("reading publish frame: %w", err))
	}
	if first.Type != msgPublish {
		return fail(fmt.Errorf("expected publish frame, got %q", first.Type))
	}
	if first.V != ingestVersion {
		return fail(fmt.Errorf("ingest protocol version %d, want %d", first.V, ingestVersion))
	}
	if len(first.Machines) == 0 {
		return fail(errors.New("publish frame lists no machines"))
	}

	db := &results.DB{}
	for {
		m, err := readIngest(br)
		if err != nil {
			return fail(fmt.Errorf("reading fragment: %w", err))
		}
		switch m.Type {
		case msgFragment:
			for _, e := range m.Entries {
				if err := db.Add(e); err != nil {
					return fail(err)
				}
			}
		case msgCommit:
			// Re-encode canonically and check we landed on the
			// publisher's hash: bytes on this side of the wire are the
			// bytes on that side, whatever order the fragments took.
			hash, err := ContentHash(db)
			if err != nil {
				return fail(err)
			}
			if m.ContentHash != "" && m.ContentHash != hash {
				return fail(fmt.Errorf("content hash mismatch: publisher %s, reassembled %s", m.ContentHash, hash))
			}
			stored, err := s.Put(Manifest{
				Label:       first.Label,
				Machines:    first.Machines,
				Options:     first.Options,
				CodeVersion: first.CodeVersion,
			}, db)
			if err != nil {
				return fail(err)
			}
			if err := writeIngest(w, &ingestMsg{
				Type:        msgPublished,
				RunID:       stored.RunID,
				ContentHash: stored.ContentHash,
				Seq:         stored.Seq,
			}); err != nil {
				return err
			}
			return nil
		default:
			return fail(fmt.Errorf("unexpected %q frame inside publish session", m.Type))
		}
	}
}

// PublishOptions tunes the client side of a publish. The zero value
// selects production defaults.
type PublishOptions struct {
	// Retries is how many times a failed session is retried (so
	// Retries+1 attempts total). Default 4; negative disables retry.
	Retries int
	// Backoff is the initial retry delay, doubling per retry and
	// saturating at 30s (the PR-1 discipline). Default 100ms.
	Backoff time.Duration
	// IdleTimeout is the per-read/write idle deadline on the session
	// connection. Default 30s; negative disables.
	IdleTimeout time.Duration
	// WrapConn, when set, wraps the dialed connection — the chaos seam.
	WrapConn func(net.Conn) net.Conn
	// OnRetry, when set, is called before each retry sleep with the
	// 1-based retry number and the error being retried.
	OnRetry func(retry int, err error)
}

func (o PublishOptions) normalize() PublishOptions {
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 30 * time.Second
	}
	return o
}

// maxPublishBackoff caps the doubling retry delay.
const maxPublishBackoff = 30 * time.Second

// publishRetryCount counts retried publish sessions process-wide, for
// the lmbench_publish_retries_total metric.
var publishRetryCount atomic.Int64

// PublishRetries returns the number of publish session retries this
// process has performed.
func PublishRetries() int64 { return publishRetryCount.Load() }

// Publish streams db to the store daemon at addr as one publish
// session (retrying with default options) and returns the stored
// manifest. The store fills RunID and Seq; the client computes the
// content hash locally so the daemon can verify end-to-end integrity,
// and verifies the daemon's reply against the same hash in return.
func Publish(ctx context.Context, addr string, m Manifest, db *results.DB) (Manifest, error) {
	return PublishWith(ctx, addr, m, db, PublishOptions{})
}

// PublishWith is Publish with explicit options. Every failure short of
// the parent context being cancelled is retried — safe by
// construction: the run ID is content-addressed, so a session that
// actually landed before its reply was lost makes the retry an
// idempotent no-op that returns the already-stored manifest.
func PublishWith(ctx context.Context, addr string, m Manifest, db *results.DB, o PublishOptions) (Manifest, error) {
	o = o.normalize()
	backoff := o.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > o.Retries {
				return Manifest{}, fmt.Errorf("store: publish failed after %d attempt(s): %w", attempt, lastErr)
			}
			publishRetryCount.Add(1)
			if o.OnRetry != nil {
				o.OnRetry(attempt, lastErr)
			}
			select {
			case <-ctx.Done():
				return Manifest{}, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxPublishBackoff {
				backoff = maxPublishBackoff
			}
		}
		got, err := publishOnce(ctx, addr, m, db, o)
		if err == nil {
			return got, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return Manifest{}, err
		}
	}
}

// publishOnce runs a single publish session attempt.
func publishOnce(ctx context.Context, addr string, m Manifest, db *results.DB, o PublishOptions) (Manifest, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: publish: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if o.WrapConn != nil {
		conn = o.WrapConn(conn)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	// Deadline poisoning interrupts the I/O in flight at cancel time;
	// the ctx guard stops subsequent calls from re-arming a fresh idle
	// deadline over the poison.
	c := &ctxConn{Conn: rpcx.WithDeadlines(conn, o.IdleTimeout, o.IdleTimeout), ctx: ctx}
	return PublishSession(c, c, m, db)
}

// ctxConn fails Reads/Writes at call entry once ctx is done.
type ctxConn struct {
	net.Conn
	ctx context.Context
}

func (c *ctxConn) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *ctxConn) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// PublishSession runs the client side of one publish session over an
// arbitrary reader/writer pair.
func PublishSession(r io.Reader, w io.Writer, m Manifest, db *results.DB) (Manifest, error) {
	hash, err := ContentHash(db)
	if err != nil {
		return Manifest{}, err
	}
	if err := writeIngest(w, &ingestMsg{
		Type: msgPublish, V: ingestVersion,
		Label: m.Label, Machines: m.Machines,
		Options: m.Options, CodeVersion: m.CodeVersion,
	}); err != nil {
		return Manifest{}, err
	}
	entries := db.Entries()
	for len(entries) > 0 {
		n := fragmentEntries
		if n > len(entries) {
			n = len(entries)
		}
		if err := writeIngest(w, &ingestMsg{Type: msgFragment, Entries: entries[:n]}); err != nil {
			return Manifest{}, err
		}
		entries = entries[n:]
	}
	if err := writeIngest(w, &ingestMsg{Type: msgCommit, ContentHash: hash}); err != nil {
		return Manifest{}, err
	}
	reply, err := readIngest(bufio.NewReader(r))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: publish reply: %w", err)
	}
	switch reply.Type {
	case msgPublished:
		// Verify the reply end-to-end: every field of the run key is
		// client-known, so a corrupted published frame (a flipped byte
		// on the wire) cannot smuggle a wrong run identity into the
		// caller — it surfaces as a retryable error instead.
		if reply.ContentHash != hash {
			return Manifest{}, fmt.Errorf("store: publish reply content hash %s, expected %s", reply.ContentHash, hash)
		}
		want := m
		want.ContentHash = hash
		if wantID := RunIDFor(want); reply.RunID != wantID {
			return Manifest{}, fmt.Errorf("store: publish reply run ID %s, expected %s", reply.RunID, wantID)
		}
		m.RunID = reply.RunID
		m.ContentHash = reply.ContentHash
		m.Seq = reply.Seq
		return m, nil
	case msgError:
		return Manifest{}, fmt.Errorf("store: daemon rejected publish: %s", reply.Err)
	default:
		return Manifest{}, fmt.Errorf("store: unexpected reply frame %q", reply.Type)
	}
}
