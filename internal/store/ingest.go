package store

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/results"
	"repro/internal/rpcx"
)

// The ingestion protocol: how runs reach a store daemon. It reuses the
// fleet's wire discipline — JSON messages, record-framed with
// internal/rpcx's RFC-1831 marking — so a fleet coordinator or a local
// run streams its database to `lmbench -store-listen` with the same
// framing code that moved the fragments between workers in the first
// place.
//
// One publish is a session:
//
//	→ publish   {label, machines, options, code_version}
//	→ fragment  {entries: [...]}        (zero or more, any order)
//	→ commit    {content_hash}          (publisher's local hash)
//	← published {run_id, content_hash, seq}   or   error {error}
//
// The daemon re-assembles the fragments into a database, encodes it
// canonically, and verifies it landed on the publisher's content hash
// before storing — an end-to-end integrity check that also proves the
// canonical encoding makes fragment arrival order irrelevant.

// ingestVersion guards the ingestion wire protocol.
const ingestVersion = 1

// maxFrameBytes bounds one ingest frame; a Figure-1 series fragment
// with quality attrs is a few hundred KB, so 16MB is far from real
// traffic while still refusing a corrupt length prefix.
const maxFrameBytes = 16 << 20

// fragmentEntries is how many entries a publishing client packs per
// fragment frame.
const fragmentEntries = 64

// Ingest message types.
const (
	msgPublish   = "publish"
	msgFragment  = "fragment"
	msgCommit    = "commit"
	msgPublished = "published"
	msgError     = "error"
)

// ingestMsg is one protocol frame.
type ingestMsg struct {
	Type string `json:"type"`
	V    int    `json:"v,omitempty"`

	// publish fields.
	Label       string   `json:"label,omitempty"`
	Machines    []string `json:"machines,omitempty"`
	Options     string   `json:"options,omitempty"`
	CodeVersion string   `json:"code_version,omitempty"`

	// fragment payload. Entries round-trip exactly: encoding/json
	// writes float64s in shortest form that parses back to the same
	// bits.
	Entries []results.Entry `json:"entries,omitempty"`

	// commit / published fields.
	ContentHash string `json:"content_hash,omitempty"`
	RunID       string `json:"run_id,omitempty"`
	Seq         int64  `json:"seq,omitempty"`

	// error field.
	Err string `json:"error,omitempty"`
}

func writeIngest(w io.Writer, m *ingestMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", m.Type, err)
	}
	return rpcx.WriteFrame(w, b)
}

func readIngest(r io.Reader) (*ingestMsg, error) {
	b, err := rpcx.ReadFrame(r, maxFrameBytes)
	if err != nil {
		return nil, err
	}
	var m ingestMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: decode frame: %w", err)
	}
	return &m, nil
}

// Serve accepts publish sessions on ln until ctx is cancelled. Each
// connection is one session; sessions run concurrently (Put serializes
// the final store write). This is the loop behind
// `lmbench -store-listen`.
func Serve(ctx context.Context, ln net.Listener, s *Store) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func() {
			defer func() { _ = conn.Close() }()
			handleSession(conn, conn, s)
		}()
	}
}

// HandleSession runs one publish session over an arbitrary
// reader/writer pair — exported for tests and for piping a session
// over transports other than TCP.
func HandleSession(r io.Reader, w io.Writer, s *Store) { handleSession(r, w, s) }

// handleSession consumes one publish session and replies with exactly
// one published or error frame. A malformed session never panics; the
// reply (or the connection teardown) carries the failure.
func handleSession(r io.Reader, w io.Writer, s *Store) {
	br := bufio.NewReader(r)
	fail := func(err error) {
		_ = writeIngest(w, &ingestMsg{Type: msgError, Err: err.Error()})
	}

	first, err := readIngest(br)
	if err != nil {
		fail(fmt.Errorf("reading publish frame: %w", err))
		return
	}
	if first.Type != msgPublish {
		fail(fmt.Errorf("expected publish frame, got %q", first.Type))
		return
	}
	if first.V != ingestVersion {
		fail(fmt.Errorf("ingest protocol version %d, want %d", first.V, ingestVersion))
		return
	}
	if len(first.Machines) == 0 {
		fail(errors.New("publish frame lists no machines"))
		return
	}

	db := &results.DB{}
	for {
		m, err := readIngest(br)
		if err != nil {
			fail(fmt.Errorf("reading fragment: %w", err))
			return
		}
		switch m.Type {
		case msgFragment:
			for _, e := range m.Entries {
				if err := db.Add(e); err != nil {
					fail(err)
					return
				}
			}
		case msgCommit:
			// Re-encode canonically and check we landed on the
			// publisher's hash: bytes on this side of the wire are the
			// bytes on that side, whatever order the fragments took.
			hash, err := ContentHash(db)
			if err != nil {
				fail(err)
				return
			}
			if m.ContentHash != "" && m.ContentHash != hash {
				fail(fmt.Errorf("content hash mismatch: publisher %s, reassembled %s", m.ContentHash, hash))
				return
			}
			stored, err := s.Put(Manifest{
				Label:       first.Label,
				Machines:    first.Machines,
				Options:     first.Options,
				CodeVersion: first.CodeVersion,
			}, db)
			if err != nil {
				fail(err)
				return
			}
			_ = writeIngest(w, &ingestMsg{
				Type:        msgPublished,
				RunID:       stored.RunID,
				ContentHash: stored.ContentHash,
				Seq:         stored.Seq,
			})
			return
		default:
			fail(fmt.Errorf("unexpected %q frame inside publish session", m.Type))
			return
		}
	}
}

// Publish streams db to the store daemon at addr as one publish
// session and returns the stored manifest. The store fills RunID and
// Seq; the client computes the content hash locally so the daemon can
// verify end-to-end integrity.
func Publish(ctx context.Context, addr string, m Manifest, db *results.DB) (Manifest, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: publish: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	return PublishSession(conn, conn, m, db)
}

// PublishSession runs the client side of one publish session over an
// arbitrary reader/writer pair.
func PublishSession(r io.Reader, w io.Writer, m Manifest, db *results.DB) (Manifest, error) {
	hash, err := ContentHash(db)
	if err != nil {
		return Manifest{}, err
	}
	if err := writeIngest(w, &ingestMsg{
		Type: msgPublish, V: ingestVersion,
		Label: m.Label, Machines: m.Machines,
		Options: m.Options, CodeVersion: m.CodeVersion,
	}); err != nil {
		return Manifest{}, err
	}
	entries := db.Entries()
	for len(entries) > 0 {
		n := fragmentEntries
		if n > len(entries) {
			n = len(entries)
		}
		if err := writeIngest(w, &ingestMsg{Type: msgFragment, Entries: entries[:n]}); err != nil {
			return Manifest{}, err
		}
		entries = entries[n:]
	}
	if err := writeIngest(w, &ingestMsg{Type: msgCommit, ContentHash: hash}); err != nil {
		return Manifest{}, err
	}
	reply, err := readIngest(bufio.NewReader(r))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: publish reply: %w", err)
	}
	switch reply.Type {
	case msgPublished:
		m.RunID = reply.RunID
		m.ContentHash = reply.ContentHash
		m.Seq = reply.Seq
		return m, nil
	case msgError:
		return Manifest{}, fmt.Errorf("store: daemon rejected publish: %s", reply.Err)
	default:
		return Manifest{}, fmt.Errorf("store: unexpected reply frame %q", reply.Type)
	}
}
