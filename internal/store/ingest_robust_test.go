package store

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netfaults"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/rpcx"
)

// startIngest boots ServeIngest on an ephemeral port and returns its
// address plus a shutdown func that cancels and waits for drain.
func startIngest(t *testing.T, s *Store, o IngestOptions) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeIngest(ctx, ln, s, o) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("ServeIngest: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("ServeIngest did not drain")
		}
	}
}

// TestPublishChaosConverges drives a publish through a client-side
// chaos conn: drops and truncations tear sessions down until the fault
// budget drains, then the retry loop lands the run. The store converges
// to exactly one healthy run and the retry counter reflects the fight.
func TestPublishChaosConverges(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	logf := t.Logf
	addr, shutdown := startIngest(t, s, IngestOptions{Registry: reg, Logf: logf})
	defer shutdown()

	inj := netfaults.New(netfaults.Plan{Seed: 7, DropRate: 0.25, TruncRate: 0.25, Budget: 3})
	before := PublishRetries()
	db := testDB(t, 1)
	got, err := PublishWith(context.Background(), addr, testManifest("chaotic"), db, PublishOptions{
		Retries:  10,
		Backoff:  5 * time.Millisecond,
		WrapConn: func(c net.Conn) net.Conn { return inj.Conn(c) },
		OnRetry:  func(n int, err error) { t.Logf("retry %d after: %v", n, err) },
	})
	if err != nil {
		t.Fatalf("publish never converged: %v (faults: %s)", err, inj.Stats())
	}
	if f := inj.Stats().Faults(); f < 1 || f > 3 {
		t.Fatalf("faults outside budget: %s", inj.Stats())
	}
	if delta := PublishRetries() - before; delta < 1 {
		t.Fatalf("publish retries delta = %d, want >= 1", delta)
	}
	// Exactly one run, byte-verified.
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].RunID != got.RunID {
		t.Fatalf("runs: %+v", runs)
	}
	mustReadable(t, s, got)
	if rep, _ := s.Scrub(); !rep.Clean() {
		t.Fatalf("post-chaos scrub: %+v", rep)
	}
	// The daemon counted the torn sessions.
	fails := reg.Counter("lmbench_store_ingest_failures_total", "").Value()
	if fails < 1 {
		t.Fatalf("ingest failures = %d, want >= 1", fails)
	}
}

// TestSilentPeerTimesOut proves a connect-then-silent client cannot
// hold a daemon session goroutine: the idle deadline fires, the
// session ends as a failure, and the daemon drains immediately.
func TestSilentPeerTimesOut(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	addr, shutdown := startIngest(t, s, IngestOptions{IdleTimeout: 200 * time.Millisecond, Registry: reg})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The daemon must hang up on us.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err == nil {
		// The daemon replies with an error frame before closing;
		// either way the connection must die promptly.
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("silent session still alive")
		}
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("daemon took %v to shed the silent peer", elapsed)
	}
	// Drain must not wait on the already-shed session.
	shutdown()
	if fails := reg.Counter("lmbench_store_ingest_failures_total", "").Value(); fails != 1 {
		t.Fatalf("ingest failures = %d, want 1", fails)
	}
}

// TestPublishRetriesAcrossDaemonRestart is the client half of the
// kill -9 story: the first session lands on a daemon that dies
// mid-ingest (connection torn with no reply), the retry lands on its
// replacement listening on the same address, and publishes converge
// idempotently.
func TestPublishRetriesAcrossDaemonRestart(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// "First daemon": accepts one session, reads the publish frame,
	// then dies without a word — the client sees a torn connection
	// exactly as a kill -9 mid-ingest produces.
	died := make(chan struct{})
	var once sync.Once
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		rpcx.ReadFrame(bufio.NewReader(c), maxFrameBytes)
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
		once.Do(func() { close(died) })
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var restart sync.Once
	before := PublishRetries()
	got, err := PublishWith(ctx, ln.Addr().String(), testManifest("survivor"), testDB(t, 1), PublishOptions{
		Retries: 5,
		Backoff: 10 * time.Millisecond,
		OnRetry: func(n int, err error) {
			// Restart: the replacement daemon takes over the same
			// listener once the first one has died.
			<-died
			restart.Do(func() {
				go ServeIngest(ctx, ln, s, IngestOptions{})
			})
		},
	})
	if err != nil {
		t.Fatalf("publish did not survive the restart: %v", err)
	}
	if PublishRetries()-before < 1 {
		t.Fatal("no retry recorded")
	}
	mustReadable(t, s, got)
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs after restart: %d", len(runs))
	}
}

// TestIngestDrainFinishesInFlight cancels the daemon mid-session and
// proves the drain semantics: no new connections, but the in-flight
// commit completes and the publisher gets its reply.
func TestIngestDrainFinishesInFlight(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeIngest(ctx, ln, s, IngestOptions{DrainTimeout: 20 * time.Second}) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Open the session, then cancel the daemon while mid-publish.
	m := testManifest("drained")
	if err := writeIngest(conn, &ingestMsg{
		Type: msgPublish, V: ingestVersion,
		Label: m.Label, Machines: m.Machines, Options: m.Options, CodeVersion: m.CodeVersion,
	}); err != nil {
		t.Fatal(err)
	}
	cancel()
	// New connections are refused once the listener is down; allow a
	// beat for the close to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			break
		}
		c2.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The in-flight session still completes.
	db := testDB(t, 1)
	for _, e := range db.Entries() {
		if err := writeIngest(conn, &ingestMsg{Type: msgFragment, Entries: []results.Entry{e}}); err != nil {
			t.Fatalf("fragment during drain: %v", err)
		}
	}
	hash, err := ContentHash(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeIngest(conn, &ingestMsg{Type: msgCommit, ContentHash: hash}); err != nil {
		t.Fatal(err)
	}
	reply, err := readIngest(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("reply during drain: %v", err)
	}
	if reply.Type != msgPublished {
		t.Fatalf("reply: %+v", reply)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeIngest: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after drain")
	}
	mustReadable(t, s, Manifest{RunID: reply.RunID, ContentHash: reply.ContentHash})
}

// TestPublishReplyVerified proves a corrupted published frame cannot
// smuggle a wrong run identity to the caller: the client re-derives
// the run ID from client-known fields and rejects a mismatch.
func TestPublishReplyVerified(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		for {
			m, err := readIngest(br)
			if err != nil {
				return
			}
			if m.Type == msgCommit {
				// Lie about the run ID, as a byte flip on the reply
				// frame could.
				writeIngest(c, &ingestMsg{
					Type: msgPublished, RunID: strings.Repeat("f", 64), ContentHash: m.ContentHash, Seq: 1,
				})
				return
			}
		}
	}()
	_, err = PublishWith(context.Background(), ln.Addr().String(), testManifest("lied-to"), testDB(t, 1),
		PublishOptions{Retries: -1})
	if err == nil || !strings.Contains(err.Error(), "run ID") {
		t.Fatalf("err = %v, want run ID mismatch", err)
	}
}
