package store

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"repro/internal/results"
	"repro/internal/rpcx"
)

// TestPublishOverTCP runs the real daemon loop on a loopback listener
// and publishes through the client: the stored object must be the
// publisher's canonical bytes.
func TestPublishOverTCP(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, s) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	db := testDB(t, 1)
	wantEnc, wantHash, err := EncodeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Publish(ctx, ln.Addr().String(), testManifest("tcp"), db)
	if err != nil {
		t.Fatal(err)
	}
	if m.ContentHash != wantHash {
		t.Errorf("published content hash %s, want %s", m.ContentHash, wantHash)
	}
	obj, err := s.Object(m.ContentHash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obj, wantEnc) {
		t.Error("daemon-side bytes differ from the publisher's canonical encoding")
	}

	// Second publish of the same run: idempotent, same run ID.
	again, err := Publish(ctx, ln.Addr().String(), testManifest("tcp"), db)
	if err != nil {
		t.Fatal(err)
	}
	if again.RunID != m.RunID {
		t.Errorf("re-publish produced run %s, want %s", again.RunID, m.RunID)
	}
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Errorf("store holds %d runs, want 1", len(runs))
	}
}

// TestFragmentOrderIrrelevant publishes the same database as
// differently ordered fragment streams; both sessions must land on the
// same run (the canonical encoding makes arrival order invisible).
func TestFragmentOrderIrrelevant(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 1)
	_, wantHash, err := EncodeDB(db)
	if err != nil {
		t.Fatal(err)
	}

	publishOrdered := func(reverse bool) Manifest {
		t.Helper()
		var req bytes.Buffer
		m := testManifest("frag")
		writeFrame := func(msg *ingestMsg) {
			if err := writeIngest(&req, msg); err != nil {
				t.Fatal(err)
			}
		}
		writeFrame(&ingestMsg{Type: msgPublish, V: ingestVersion,
			Label: m.Label, Machines: m.Machines, Options: m.Options, CodeVersion: m.CodeVersion})
		entries := db.Entries()
		if reverse {
			for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
		// One entry per fragment: the maximally fragmented stream.
		for _, e := range entries {
			writeFrame(&ingestMsg{Type: msgFragment, Entries: []results.Entry{e}})
		}
		writeFrame(&ingestMsg{Type: msgCommit, ContentHash: wantHash})

		var resp bytes.Buffer
		HandleSession(&req, &resp, s)
		reply, err := readIngest(&resp)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type != msgPublished {
			t.Fatalf("session failed: %s %s", reply.Type, reply.Err)
		}
		return Manifest{RunID: reply.RunID, ContentHash: reply.ContentHash}
	}

	fwd := publishOrdered(false)
	rev := publishOrdered(true)
	if fwd.RunID != rev.RunID || fwd.ContentHash != wantHash {
		t.Errorf("fragment order changed the run: fwd %+v rev %+v want hash %s", fwd, rev, wantHash)
	}
}

// TestSessionRejects exercises the daemon's failure replies: wrong
// protocol version, missing machines, hash mismatch, stray frames.
func TestSessionRejects(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	session := func(build func(buf *bytes.Buffer)) *ingestMsg {
		t.Helper()
		var req, resp bytes.Buffer
		build(&req)
		HandleSession(&req, &resp, s)
		reply, err := readIngest(&resp)
		if err != nil {
			t.Fatalf("no reply frame: %v", err)
		}
		return reply
	}
	m := testManifest("x")

	if r := session(func(b *bytes.Buffer) {
		_ = writeIngest(b, &ingestMsg{Type: msgPublish, V: 99, Machines: m.Machines})
	}); r.Type != msgError || !strings.Contains(r.Err, "version") {
		t.Errorf("version mismatch not rejected: %+v", r)
	}

	if r := session(func(b *bytes.Buffer) {
		_ = writeIngest(b, &ingestMsg{Type: msgPublish, V: ingestVersion})
	}); r.Type != msgError || !strings.Contains(r.Err, "machines") {
		t.Errorf("machine-less publish not rejected: %+v", r)
	}

	if r := session(func(b *bytes.Buffer) {
		_ = writeIngest(b, &ingestMsg{Type: msgPublish, V: ingestVersion, Machines: m.Machines})
		_ = writeIngest(b, &ingestMsg{Type: msgCommit, ContentHash: "not-the-hash"})
	}); r.Type != msgError || !strings.Contains(r.Err, "content hash mismatch") {
		t.Errorf("hash mismatch not rejected: %+v", r)
	}

	if r := session(func(b *bytes.Buffer) {
		_ = writeIngest(b, &ingestMsg{Type: msgFragment})
	}); r.Type != msgError {
		t.Errorf("fragment before publish not rejected: %+v", r)
	}

	if r := session(func(b *bytes.Buffer) {
		_ = writeIngest(b, &ingestMsg{Type: msgPublish, V: ingestVersion, Machines: m.Machines})
		_ = writeIngest(b, &ingestMsg{Type: msgPublished})
	}); r.Type != msgError {
		t.Errorf("stray frame type not rejected: %+v", r)
	}

	// Raw garbage instead of a frame: the framing layer must refuse it
	// without panicking.
	if r := session(func(b *bytes.Buffer) {
		b.WriteString("GET / HTTP/1.1\r\n\r\n")
	}); r.Type != msgError {
		t.Errorf("garbage stream not rejected: %+v", r)
	}

	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Errorf("rejected sessions stored %d runs", len(runs))
	}
}

// TestIngestUsesRPCXFraming pins the wire discipline: an ingest frame
// is readable with rpcx.ReadFrame, the same record marking the fleet
// protocol uses.
func TestIngestUsesRPCXFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := writeIngest(&buf, &ingestMsg{Type: msgPublish, V: ingestVersion, Machines: []string{"m"}}); err != nil {
		t.Fatal(err)
	}
	payload, err := rpcx.ReadFrame(&buf, maxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(payload, []byte(`"type":"publish"`)) {
		t.Errorf("frame payload is not the expected JSON: %s", payload)
	}
}
