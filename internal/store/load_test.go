package store

// The read path is built for traffic: rendered tables are cached by
// content hash and every endpoint honors If-None-Match. This load test
// drives the HTTP surface with the repo's own measurement harness
// (timing.BenchLoopCtx over a wall clock — the same auto-scaling
// min-of-N loop the benchmarks use), pushing real requests through a
// loopback TCP server and checking the cache actually absorbs them.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/ptime"
	"repro/internal/timing"
)

func TestReadPathUnderLoad(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testManifest("load"), testDB(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv := &Server{Store: s, Registry: obs.NewRegistry()}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	url := ts.URL + "/api/runs/latest/tables"
	client := ts.Client()

	// Prime the cache and learn the ETag.
	first, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, first.Body)
	_ = first.Body.Close()
	etag := first.Header.Get("ETag")
	if first.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("prime request: status %d, etag %q", first.StatusCode, etag)
	}

	// Keep batches short: this is a smoke-scale load test, not a
	// benchmark run.
	opts := timing.Options{MinSampleTime: 2 * ptime.Millisecond, Samples: 3}
	clock := timing.NewWallClock()
	ctx := context.Background()

	measure := func(name string, req func() (*http.Response, error), want int) timing.Measurement {
		t.Helper()
		m, err := timing.BenchLoopCtx(ctx, clock, opts, func(n int64) error {
			for i := int64(0); i < n; i++ {
				resp, err := req()
				if err != nil {
					return err
				}
				_, err = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					return err
				}
				if resp.StatusCode != want {
					t.Fatalf("%s: status %d, want %d", name, resp.StatusCode, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.PerOp <= 0 || m.N <= 0 {
			t.Fatalf("%s: degenerate measurement %v", name, m)
		}
		t.Logf("%s: %v (~%.0f req/s)", name, m, 1e9/m.PerOpNS())
		return m
	}

	// Warm 200s: the render cache serves every one (the table was
	// rendered once, during priming).
	hits0 := srv.cacheHitCount()
	measure("GET 200 (cached render)", func() (*http.Response, error) {
		return client.Get(url)
	}, http.StatusOK)
	if srv.cacheHitCount() == hits0 {
		t.Error("sustained 200s did not touch the render cache")
	}

	// Conditional GETs: every request must revalidate to a bodyless 304.
	nm0 := srv.notModifiedCount()
	m304 := measure("GET 304 (conditional)", func() (*http.Response, error) {
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("If-None-Match", etag)
		return client.Do(req)
	}, http.StatusNotModified)
	served := srv.notModifiedCount() - nm0
	if served <= 0 {
		t.Error("conditional load was not counted as 304s")
	}
	// The harness auto-scaled N so the batches are real traffic, not a
	// handful of requests.
	if total := m304.N * int64(len(m304.Samples)); served < total {
		t.Errorf("304 counter grew by %d, but the harness sent at least %d", served, total)
	}
}

// cacheHitCount and notModifiedCount read the server's own counters —
// the load test trusts the same metrics an operator would watch.
func (s *Server) cacheHitCount() int64    { return s.cacheHits.Value() }
func (s *Server) notModifiedCount() int64 { return s.notModified.Value() }
