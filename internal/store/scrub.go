package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ScrubReport is what a store scrub found and did.
type ScrubReport struct {
	// Objects and Runs count the healthy shards that survived.
	Objects int
	Runs    int
	// Partials counts abandoned .tmp-* files from interrupted atomic
	// writes, removed outright (a temp file is pre-rename by
	// definition — it was never committed).
	Partials int
	// CorruptObjects lists object shards whose bytes no longer hash to
	// their name; moved to quarantine/.
	CorruptObjects []string
	// CorruptManifests lists run shards that were unparseable,
	// misnamed, or referenced a missing/corrupt object; moved to
	// quarantine/.
	CorruptManifests []string
	// OrphanObjects lists valid objects no surviving run references,
	// removed as garbage. Safe by content addressing: if the run they
	// belonged to is re-published, the identical object is recreated.
	OrphanObjects []string
}

// Clean reports whether the scrub found nothing wrong.
func (r ScrubReport) Clean() bool {
	return r.Partials == 0 && len(r.CorruptObjects) == 0 &&
		len(r.CorruptManifests) == 0 && len(r.OrphanObjects) == 0
}

// String renders the operator-facing summary printed by
// `lmbench -store-scrub` and the daemon's startup scrub.
func (r ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d run(s), %d object(s) healthy", r.Runs, r.Objects)
	if r.Clean() {
		b.WriteString("; store clean")
		return b.String()
	}
	if r.Partials > 0 {
		fmt.Fprintf(&b, "; removed %d partial write(s)", r.Partials)
	}
	if n := len(r.CorruptObjects); n > 0 {
		fmt.Fprintf(&b, "; quarantined %d corrupt object(s): %s", n, strings.Join(r.CorruptObjects, ", "))
	}
	if n := len(r.CorruptManifests); n > 0 {
		fmt.Fprintf(&b, "; quarantined %d corrupt manifest(s): %s", n, strings.Join(r.CorruptManifests, ", "))
	}
	if n := len(r.OrphanObjects); n > 0 {
		fmt.Fprintf(&b, "; collected %d orphan object(s)", n)
	}
	return b.String()
}

// Scrub walks the store and repairs what a crash, torn write, or disk
// corruption left behind:
//
//   - abandoned .tmp-* files (a publish interrupted pre-rename) are
//     removed,
//   - objects are re-hashed; any whose bytes don't match their
//     content-hash name are moved to quarantine/ (never deleted — an
//     operator may want the evidence),
//   - manifests that don't parse, are misnamed, or reference a
//     missing/quarantined object are moved to quarantine/,
//   - valid objects no surviving run references are deleted.
//
// The store is fully usable afterwards: every surviving run resolves
// and its database re-verifies. Re-publishing a quarantined run is
// safe and idempotent — content addressing recreates exactly the
// shards that were lost. Scrub holds the store lock, so it can run on
// a live daemon between ingests.
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport

	objDir := filepath.Join(s.dir, "objects")
	runDir := filepath.Join(s.dir, "runs")

	// Pass 1: sweep abandoned temp files.
	for _, dir := range []string{objDir, runDir} {
		des, err := os.ReadDir(dir)
		if err != nil {
			return rep, err
		}
		for _, de := range des {
			if !de.IsDir() && strings.HasPrefix(de.Name(), ".tmp-") {
				if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
					return rep, err
				}
				rep.Partials++
			}
		}
	}

	// Pass 2: re-hash every object; quarantine liars.
	healthy := make(map[string]bool)
	des, err := os.ReadDir(objDir)
	if err != nil {
		return rep, err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		ok := len(name) == 64 && isHex(name)
		if ok {
			b, err := os.ReadFile(filepath.Join(objDir, name))
			if err != nil {
				return rep, err
			}
			sum := sha256.Sum256(b)
			ok = hex.EncodeToString(sum[:]) == name
		}
		if !ok {
			if err := s.quarantine(filepath.Join(objDir, name), "object-"+name); err != nil {
				return rep, err
			}
			rep.CorruptObjects = append(rep.CorruptObjects, name)
			continue
		}
		healthy[name] = true
	}

	// Pass 3: validate manifests; quarantine unusable ones and any
	// whose object didn't survive pass 2.
	referenced := make(map[string]bool)
	des, err = os.ReadDir(runDir)
	if err != nil {
		return rep, err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(runDir, name)
		m, err := readManifest(path)
		bad := ""
		switch {
		case err != nil:
			bad = err.Error()
		case m.RunID != strings.TrimSuffix(name, ".json"):
			bad = fmt.Sprintf("manifest claims run_id %s", m.RunID)
		case !healthy[m.ContentHash]:
			bad = fmt.Sprintf("object %s missing or corrupt", m.ContentHash)
		}
		if bad != "" {
			if err := s.quarantine(path, "run-"+name); err != nil {
				return rep, err
			}
			rep.CorruptManifests = append(rep.CorruptManifests, name+" ("+bad+")")
			continue
		}
		referenced[m.ContentHash] = true
		rep.Runs++
	}

	// Pass 4: collect healthy objects no surviving run references.
	for hash := range healthy {
		if referenced[hash] {
			rep.Objects++
			continue
		}
		if err := os.Remove(filepath.Join(objDir, hash)); err != nil {
			return rep, err
		}
		rep.OrphanObjects = append(rep.OrphanObjects, hash)
	}

	sort.Strings(rep.CorruptObjects)
	sort.Strings(rep.CorruptManifests)
	sort.Strings(rep.OrphanObjects)
	if !rep.Clean() {
		// The run set may have changed; durably record the new
		// directory states.
		if err := syncDir(objDir); err != nil {
			return rep, err
		}
		if err := syncDir(runDir); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// quarantine moves a damaged shard into quarantine/ under a stable
// name, appending a numeric suffix if a previous scrub already parked
// one by that name.
func (s *Store) quarantine(path, name string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, name)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, os.ErrNotExist) {
			break
		} else if err != nil {
			return err
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
	}
	return os.Rename(path, dst)
}
