package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// putTwo seeds a store with two distinct runs and returns it with
// their manifests.
func putTwo(t *testing.T) (*Store, Manifest, Manifest) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s.Put(testManifest("one"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Put(testManifest("two"), testDB(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	return s, m1, m2
}

// reopen re-opens the store directory, as a daemon restart would.
func reopen(t *testing.T, s *Store) *Store {
	t.Helper()
	r, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// mustReadable asserts the run resolves and its database verifies.
func mustReadable(t *testing.T, s *Store, m Manifest) {
	t.Helper()
	if _, _, err := s.DB(m.RunID); err != nil {
		t.Fatalf("run %s unreadable: %v", m.RunID[:12], err)
	}
}

// TestWriteThenReopenScrubClean is the durability regression for the
// fsync'd atomic-write path: a freshly written store re-opens and
// scrubs clean, with every run still verifying against its content
// hash.
func TestWriteThenReopenScrubClean(t *testing.T) {
	s, m1, m2 := putTwo(t)
	s = reopen(t, s)
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Runs != 2 || rep.Objects != 2 {
		t.Fatalf("scrub of healthy store: %+v", rep)
	}
	mustReadable(t, s, m1)
	mustReadable(t, s, m2)
	if !strings.Contains(rep.String(), "store clean") {
		t.Fatalf("report: %s", rep)
	}
}

func TestScrubSweepsTornTempFiles(t *testing.T) {
	s, m1, m2 := putTwo(t)
	for _, p := range []string{
		filepath.Join(s.Dir(), "objects", ".tmp-1234"),
		filepath.Join(s.Dir(), "runs", ".tmp-torn"),
	} {
		if err := os.WriteFile(p, []byte("half a wri"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := reopen(t, s).Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partials != 2 || len(rep.CorruptObjects) != 0 || len(rep.CorruptManifests) != 0 {
		t.Fatalf("scrub: %+v", rep)
	}
	mustReadable(t, s, m1)
	mustReadable(t, s, m2)
	if rep2, _ := s.Scrub(); !rep2.Clean() {
		t.Fatalf("second scrub not clean: %+v", rep2)
	}
}

func TestScrubQuarantinesBitFlippedObject(t *testing.T) {
	s, m1, m2 := putTwo(t)
	// Flip one byte of m2's object on disk.
	path := s.objectPath(m2.ContentHash)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s = reopen(t, s)
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the flipped object and the run that referenced it go to
	// quarantine; the healthy run is untouched.
	if len(rep.CorruptObjects) != 1 || rep.CorruptObjects[0] != m2.ContentHash {
		t.Fatalf("corrupt objects: %v", rep.CorruptObjects)
	}
	if len(rep.CorruptManifests) != 1 || !strings.HasPrefix(rep.CorruptManifests[0], m2.RunID+".json") {
		t.Fatalf("corrupt manifests: %v", rep.CorruptManifests)
	}
	if rep.Runs != 1 || rep.Objects != 1 {
		t.Fatalf("healthy counts: %+v", rep)
	}
	mustReadable(t, s, m1)
	if _, ok, _ := s.Get(m2.RunID); ok {
		t.Fatal("corrupt run still resolvable")
	}
	// The evidence is preserved, not deleted.
	if _, err := os.Stat(filepath.Join(s.Dir(), "quarantine", "object-"+m2.ContentHash)); err != nil {
		t.Fatalf("quarantined object: %v", err)
	}

	// Idempotent re-publish restores exactly what was lost.
	m2b, err := s.Put(testManifest("two"), testDB(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m2b.RunID != m2.RunID || m2b.ContentHash != m2.ContentHash {
		t.Fatalf("re-publish landed on %s/%s, want %s/%s", m2b.RunID[:12], m2b.ContentHash[:12], m2.RunID[:12], m2.ContentHash[:12])
	}
	mustReadable(t, s, m2b)
	if rep2, _ := s.Scrub(); !rep2.Clean() {
		t.Fatalf("post-repair scrub not clean: %+v", rep2)
	}
}

func TestScrubQuarantinesTruncatedObject(t *testing.T) {
	s, m1, m2 := putTwo(t)
	if err := os.Truncate(s.objectPath(m1.ContentHash), 10); err != nil {
		t.Fatal(err)
	}
	rep, err := reopen(t, s).Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CorruptObjects) != 1 || rep.CorruptObjects[0] != m1.ContentHash {
		t.Fatalf("scrub: %+v", rep)
	}
	mustReadable(t, s, m2)
}

func TestScrubQuarantinesBadManifests(t *testing.T) {
	s, m1, m2 := putTwo(t)
	runDir := filepath.Join(s.Dir(), "runs")
	// Unparseable JSON.
	if err := os.WriteFile(filepath.Join(runDir, strings.Repeat("a", 64)+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid JSON filed under the wrong run ID.
	b, err := os.ReadFile(s.manifestPath(m1.RunID))
	if err != nil {
		t.Fatal(err)
	}
	misnamed := strings.Repeat("b", 64) + ".json"
	if err := os.WriteFile(filepath.Join(runDir, misnamed), b, 0o644); err != nil {
		t.Fatal(err)
	}
	// A misnamed manifest breaks the whole run listing before the
	// scrub...
	if _, err := s.Runs(); err == nil {
		t.Fatal("expected Runs to fail on a misnamed manifest")
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CorruptManifests) != 2 {
		t.Fatalf("corrupt manifests: %v", rep.CorruptManifests)
	}
	// ...and the scrub makes it listable again.
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs after scrub: %d", len(runs))
	}
	mustReadable(t, s, m1)
	mustReadable(t, s, m2)
}

func TestScrubCollectsOrphanObjects(t *testing.T) {
	s, m1, _ := putTwo(t)
	// Delete one manifest, leaving its object unreferenced but valid.
	if err := os.Remove(s.manifestPath(m1.RunID)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrphanObjects) != 1 || rep.OrphanObjects[0] != m1.ContentHash {
		t.Fatalf("orphans: %v", rep.OrphanObjects)
	}
	if _, err := s.Object(m1.ContentHash); err == nil {
		t.Fatal("orphan object survived collection")
	}
	// Re-publishing the lost run recreates the object bit-for-bit.
	m1b, err := s.Put(testManifest("one"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m1b.RunID != m1.RunID {
		t.Fatalf("re-publish landed on %s, want %s", m1b.RunID[:12], m1.RunID[:12])
	}
	mustReadable(t, s, m1b)
}

// FuzzScrub drops arbitrary debris into a live store directory and
// asserts the invariants crash recovery depends on: open+scrub never
// panics or errors, a second scrub is always clean, and the healthy
// run survives readable unless the debris overwrote its own shards.
func FuzzScrub(f *testing.F) {
	f.Add([]byte("{torn json"), []byte{0x00, 0xff}, []byte("half a write"))
	f.Add([]byte(`{"run_id":"deadbeef"}`), []byte(""), []byte{0x7f})
	f.Add([]byte(`not json at all`), []byte("AAAA"), []byte("BBBB"))
	f.Fuzz(func(t *testing.T, manifest, object, tmp []byte) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Put(testManifest("healthy"), testDB(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		// Debris: a manifest-shaped shard, an object-shaped shard
		// (64-hex name that won't match its hash unless the fuzzer
		// finds a SHA-256 preimage), and a torn temp file.
		if err := os.WriteFile(filepath.Join(dir, "runs", strings.Repeat("c", 64)+".json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "objects", strings.Repeat("d", 64)), object, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "objects", ".tmp-fuzz"), tmp, 0o644); err != nil {
			t.Fatal(err)
		}
		s = func() *Store {
			r, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			return r
		}()
		rep, err := s.Scrub()
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		if rep.Partials != 1 {
			t.Fatalf("partials: %+v", rep)
		}
		mustReadable(t, s, m)
		rep2, err := s.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if !rep2.Clean() {
			t.Fatalf("second scrub not clean: %+v", rep2)
		}
	})
}
