package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/compare"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/paper"
	"repro/internal/paperdata"
	"repro/internal/results"
)

// Server is the store's HTTP query/compare surface — the serving layer
// in front of the results database, grown out of obs.Server's
// context-bound lifecycle:
//
//	/healthz                      liveness
//	/metrics                      Prometheus exposition (when Registry set)
//	/api/runs                     JSON run listing, ingest order
//	/api/runs/{ref}               one run's manifest
//	/api/runs/{ref}/db            the canonical database bytes
//	/api/runs/{ref}/tables        every paper table rendered from the run
//	/api/runs/{ref}/tables/{id}   one paper table ("table2" … "table17")
//	/api/compare?ref=&got=        sorted comparison table ("paper" allowed)
//	/api/trend?bench=&machine=    per-benchmark series across runs (JSON)
//	/api/regressions?base=&head=  automatic regression report (text)
//	/api/machines                 machine-catalog listing (JSON)
//	/api/machines/{name}          one profile's canonical JSON
//
// A {ref} or query reference is anything Store.Resolve accepts: a run
// ID or unique prefix, a label, or "latest"/"latest~N".
//
// The read path is built for traffic. Every response carries a strong
// ETag derived from content hashes — a run's database and everything
// rendered from it are keyed by its content hash, and listing/trend
// responses by the store generation (which changes exactly when a run
// is ingested). If-None-Match short-circuits to 304 before any
// rendering, and rendered bodies are cached under their ETag, so the
// cache can never serve stale bytes: new content means a new key, and
// a "latest" comparison is re-rendered the moment a new run lands.
type Server struct {
	Store *Store
	// Registry, when set, mounts /metrics and counts requests, 304s
	// and render-cache traffic as lmbench_store_* families.
	Registry *obs.Registry
	// Catalog backs /api/machines; nil serves the shipped catalog.
	// Profile ETags derive from fingerprints, so a mutable catalog
	// (file-loaded or calibrated profiles added while serving) stays
	// correctly revalidated.
	Catalog *machines.Catalog

	metricsOnce sync.Once
	reqs        *obs.Counter
	notModified *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	mu         sync.Mutex
	cache      map[string][]byte
	cacheOrder []string
}

// maxCachedBodies bounds the rendered-body cache. Keys are content
// hashes, so eviction only costs a re-render, never correctness.
const maxCachedBodies = 256

func (s *Server) initMetrics() {
	s.metricsOnce.Do(func() {
		if s.Registry == nil {
			return
		}
		s.reqs = s.Registry.Counter("lmbench_store_http_requests_total",
			"HTTP requests served by the results-store API.")
		s.notModified = s.Registry.Counter("lmbench_store_http_not_modified_total",
			"Requests answered 304 via If-None-Match revalidation.")
		s.cacheHits = s.Registry.Counter("lmbench_store_render_cache_hits_total",
			"Rendered bodies served from the content-hash cache.")
		s.cacheMisses = s.Registry.Counter("lmbench_store_render_cache_misses_total",
			"Rendered bodies computed on demand.")
		s.Registry.GaugeFunc("lmbench_store_runs",
			"Runs currently stored.", func() float64 {
				runs, err := s.Store.Runs()
				if err != nil {
					return -1
				}
				return float64(len(runs))
			})
	})
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// etagFor derives a strong ETag from the parts that determine a
// response body: renderer name, renderer inputs, content hashes.
func etagFor(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%s\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// cached returns the body stored under etag.
func (s *Server) cached(etag string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.cache[etag]
	return b, ok
}

// remember stores body under etag, evicting oldest-inserted entries
// past the cap.
func (s *Server) remember(etag string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = make(map[string][]byte)
	}
	if _, ok := s.cache[etag]; ok {
		return
	}
	s.cache[etag] = body
	s.cacheOrder = append(s.cacheOrder, etag)
	for len(s.cacheOrder) > maxCachedBodies {
		delete(s.cache, s.cacheOrder[0])
		s.cacheOrder = s.cacheOrder[1:]
	}
}

// respond implements the shared conditional-GET discipline: set the
// ETag, answer 304 to a matching If-None-Match without rendering,
// otherwise serve the cached body or render and remember it.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, etag, contentType string, render func() ([]byte, error)) {
	inc(s.reqs)
	quoted := `"` + etag + `"`
	w.Header().Set("ETag", quoted)
	w.Header().Set("Cache-Control", "no-cache")
	if match := r.Header.Get("If-None-Match"); match != "" {
		for _, cand := range strings.Split(match, ",") {
			cand = strings.TrimSpace(cand)
			if cand == quoted || cand == "*" || cand == "W/"+quoted {
				inc(s.notModified)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	body, ok := s.cached(etag)
	if ok {
		inc(s.cacheHits)
	} else {
		inc(s.cacheMisses)
		var err error
		body, err = render()
		if err != nil {
			// Errors carry no validator: the ETag names a successful
			// rendering, and leaving it on a failure would let a later
			// If-None-Match revalidate the error to a 304.
			w.Header().Del("ETag")
			httpError(w, err)
			return
		}
		s.remember(etag, body)
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(body)
}

// httpError maps store errors onto status codes: unknown references
// are 404, everything else a 500.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	msg := err.Error()
	if strings.Contains(msg, "no run matches") || strings.Contains(msg, "no machine named") || strings.Contains(msg, "only") && strings.Contains(msg, "stored") {
		code = http.StatusNotFound
	} else if strings.Contains(msg, "ambiguous") || strings.Contains(msg, "empty run reference") || strings.Contains(msg, "bad reference") || strings.Contains(msg, "no benchmarks in common") {
		code = http.StatusBadRequest
	}
	http.Error(w, msg, code)
}

// Handler returns the route table, exported separately so tests (and
// embedders) can drive it without a socket.
func (s *Server) Handler() http.Handler {
	s.initMetrics()
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	if s.Registry != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.Registry.WritePrometheus(w)
		})
	}

	mux.HandleFunc("GET /api/runs", func(w http.ResponseWriter, r *http.Request) {
		gen, err := s.Store.Generation()
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("runs", gen), "application/json", func() ([]byte, error) {
			runs, err := s.Store.Runs()
			if err != nil {
				return nil, err
			}
			return jsonBody(runs)
		})
	})

	mux.HandleFunc("GET /api/runs/{ref}", func(w http.ResponseWriter, r *http.Request) {
		m, err := s.Store.Resolve(r.PathValue("ref"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("manifest", m.RunID), "application/json", func() ([]byte, error) {
			return jsonBody(m)
		})
	})

	mux.HandleFunc("GET /api/runs/{ref}/db", func(w http.ResponseWriter, r *http.Request) {
		m, err := s.Store.Resolve(r.PathValue("ref"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("db", m.ContentHash), "text/plain; charset=utf-8", func() ([]byte, error) {
			return s.Store.Object(m.ContentHash)
		})
	})

	mux.HandleFunc("GET /api/runs/{ref}/tables", func(w http.ResponseWriter, r *http.Request) {
		m, err := s.Store.Resolve(r.PathValue("ref"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("tables", m.ContentHash), "text/plain; charset=utf-8", func() ([]byte, error) {
			_, db, err := s.Store.DB(m.RunID)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := paper.RenderAll(&buf, db); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
	})

	mux.HandleFunc("GET /api/runs/{ref}/tables/{table}", func(w http.ResponseWriter, r *http.Request) {
		m, err := s.Store.Resolve(r.PathValue("ref"))
		if err != nil {
			httpError(w, err)
			return
		}
		table := r.PathValue("table")
		s.respond(w, r, etagFor("table", table, m.ContentHash), "text/plain; charset=utf-8", func() ([]byte, error) {
			_, db, err := s.Store.DB(m.RunID)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := paper.RenderTable(&buf, table, db); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
	})

	mux.HandleFunc("GET /api/machines", func(w http.ResponseWriter, r *http.Request) {
		cat := s.catalog()
		entries := cat.Entries()
		list := make([]machineInfo, 0, len(entries))
		parts := []string{"machines"}
		for _, e := range entries {
			fp, err := e.Profile.Fingerprint()
			if err != nil {
				httpError(w, err)
				return
			}
			// Fingerprint() is the full canonical identity string;
			// publish its digest, not whole profiles, in the listing.
			list = append(list, machineInfo{
				Name: e.Profile.Name, CPU: e.Profile.CPUName, OS: e.Profile.OSName,
				Geometry: machines.GeometrySummary(e.Profile),
				Source:   e.Source, Fingerprint: fingerprintDigest(fp),
			})
			parts = append(parts, e.Profile.Name, e.Source, fp)
		}
		s.respond(w, r, etagFor(parts...), "application/json", func() ([]byte, error) {
			return jsonBody(list)
		})
	})

	// Machine names contain "/" ("Linux/i686"), hence the ... wildcard.
	mux.HandleFunc("GET /api/machines/{name...}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		e, ok := s.catalog().Entry(name)
		if !ok {
			httpError(w, fmt.Errorf("no machine named %q in the catalog", name))
			return
		}
		fp, err := e.Profile.Fingerprint()
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("machine", name, e.Source, fp), "application/json", func() ([]byte, error) {
			return machines.EncodeProfile(e.Profile)
		})
	})

	mux.HandleFunc("GET /api/compare", func(w http.ResponseWriter, r *http.Request) {
		refKey, refDB, err := s.resolveCompareRef(r.URL.Query().Get("ref"))
		if err != nil {
			httpError(w, err)
			return
		}
		gotKey, gotDB, err := s.resolveCompareRef(r.URL.Query().Get("got"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("compare", refKey, gotKey), "text/plain; charset=utf-8", func() ([]byte, error) {
			ref, err := refDB()
			if err != nil {
				return nil, err
			}
			got, err := gotDB()
			if err != nil {
				return nil, err
			}
			comps := compare.Compare(ref, got)
			if len(comps) == 0 {
				return nil, fmt.Errorf("no benchmarks in common between %s and %s", refKey, gotKey)
			}
			var buf bytes.Buffer
			compare.Render(&buf, comps)
			mean, above, total := compare.Summary(comps, 0.6)
			fmt.Fprintf(&buf, "\nshape agreement: mean rank %.3f; %d/%d benchmarks >= 0.60\n",
				mean, above, total)
			return buf.Bytes(), nil
		})
	})

	mux.HandleFunc("GET /api/trend", func(w http.ResponseWriter, r *http.Request) {
		bench := r.URL.Query().Get("bench")
		machine := r.URL.Query().Get("machine")
		if bench == "" || machine == "" {
			http.Error(w, "trend needs ?bench= and ?machine=", http.StatusBadRequest)
			return
		}
		gen, err := s.Store.Generation()
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("trend", gen, bench, machine), "application/json", func() ([]byte, error) {
			points, err := s.Trend(bench, machine)
			if err != nil {
				return nil, err
			}
			return jsonBody(points)
		})
	})

	mux.HandleFunc("GET /api/regressions", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		baseRef, headRef := q.Get("base"), q.Get("head")
		if baseRef == "" {
			baseRef = "latest~1"
		}
		if headRef == "" {
			headRef = "latest"
		}
		base, err := s.Store.Resolve(baseRef)
		if err != nil {
			httpError(w, err)
			return
		}
		head, err := s.Store.Resolve(headRef)
		if err != nil {
			httpError(w, err)
			return
		}
		s.respond(w, r, etagFor("regressions", base.RunID, head.RunID), "text/plain; charset=utf-8", func() ([]byte, error) {
			_, baseDB, err := s.Store.DB(base.RunID)
			if err != nil {
				return nil, err
			}
			_, headDB, err := s.Store.DB(head.RunID)
			if err != nil {
				return nil, err
			}
			rep := compare.Regressions(baseDB, headDB, compare.RegressOptions{})
			rep.BaseID, rep.HeadID = runTitle(base), runTitle(head)
			var buf bytes.Buffer
			compare.RenderRegressions(&buf, rep)
			return buf.Bytes(), nil
		})
	})

	return mux
}

// catalog resolves the serving catalog (nil field = the shipped set).
func (s *Server) catalog() *machines.Catalog {
	if s.Catalog != nil {
		return s.Catalog
	}
	return machines.Default()
}

// machineInfo is one row of the /api/machines listing.
// fingerprintDigest compresses a Profile.Fingerprint identity string
// (the full canonical JSON) into a short stable hex digest for
// listings and cache-key display.
func fingerprintDigest(fp string) string {
	sum := sha256.Sum256([]byte(fp))
	return hex.EncodeToString(sum[:])[:32]
}

type machineInfo struct {
	Name        string `json:"name"`
	CPU         string `json:"cpu,omitempty"`
	OS          string `json:"os,omitempty"`
	Geometry    string `json:"geometry,omitempty"`
	Source      string `json:"source"`
	Fingerprint string `json:"fingerprint"`
}

// runTitle names a run in human-facing reports: its label when set,
// else a run-ID prefix.
func runTitle(m Manifest) string {
	if m.Label != "" {
		return m.Label
	}
	if len(m.RunID) > 12 {
		return m.RunID[:12]
	}
	return m.RunID
}

// resolveCompareRef maps a comparison reference — "paper" or any run
// reference — to a cache key and a lazy database loader. The loader is
// lazy so a 304 or cached render never touches disk.
func (s *Server) resolveCompareRef(ref string) (string, func() (*results.DB, error), error) {
	if ref == "" {
		return "", nil, fmt.Errorf("empty run reference (use ?ref= and ?got=)")
	}
	if ref == "paper" {
		return "paper", func() (*results.DB, error) { return paperdata.DB(), nil }, nil
	}
	m, err := s.Store.Resolve(ref)
	if err != nil {
		return "", nil, err
	}
	return m.ContentHash, func() (*results.DB, error) {
		_, db, err := s.Store.DB(m.RunID)
		return db, err
	}, nil
}

// TrendPoint is one run's value of one benchmark on one machine.
type TrendPoint struct {
	RunID       string    `json:"run_id"`
	Seq         int64     `json:"seq"`
	Label       string    `json:"label,omitempty"`
	CodeVersion string    `json:"code_version"`
	Created     time.Time `json:"created"`
	Unit        string    `json:"unit"`
	Value       float64   `json:"value"`
}

// Trend collects the scalar value of (bench, machine) from every
// stored run that has it, in ingest order — the per-experiment
// trajectory across runs the regression report summarizes pairwise.
func (s *Server) Trend(bench, machine string) ([]TrendPoint, error) {
	runs, err := s.Store.Runs()
	if err != nil {
		return nil, err
	}
	points := make([]TrendPoint, 0, len(runs))
	for _, m := range runs {
		_, db, err := s.Store.DB(m.RunID)
		if err != nil {
			return nil, err
		}
		e, ok := db.Get(bench, machine)
		if !ok || e.IsSeries() {
			continue
		}
		points = append(points, TrendPoint{
			RunID: m.RunID, Seq: m.Seq, Label: m.Label,
			CodeVersion: m.CodeVersion, Created: m.Created,
			Unit: e.Unit, Value: e.Scalar,
		})
	}
	return points, nil
}

func jsonBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Start begins serving the API on addr in the background and returns
// the bound address; the server stops when ctx is cancelled (the
// obs.StartHTTP lifecycle).
func (s *Server) Start(ctx context.Context, addr string) (bound string, stop func(), err error) {
	return obs.StartHTTP(ctx, addr, s.Handler())
}
