package store

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/results"
)

// serverFixture returns a store with two distinct runs and a test
// server over the API.
func serverFixture(t *testing.T) (*Store, *Server, *httptest.Server) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testManifest("run-a"), testDB(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testManifest("run-b"), testDB(t, 1.5)); err != nil {
		t.Fatal(err)
	}
	srv := &Server{Store: s, Registry: obs.NewRegistry()}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return s, srv, ts
}

func get(t *testing.T, url, etag string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestETagRevalidation: every endpoint returns a strong ETag, and a
// conditional re-GET with it returns 304 with an empty body.
func TestETagRevalidation(t *testing.T) {
	_, _, ts := serverFixture(t)
	endpoints := []string{
		"/api/runs",
		"/api/runs/latest",
		"/api/runs/latest/db",
		"/api/runs/latest/tables",
		"/api/runs/run-a/tables/table7",
		"/api/compare?ref=run-a&got=run-b",
		"/api/compare?ref=paper&got=latest",
		"/api/trend?bench=lat_syscall&machine=Linux%2Fi686",
		"/api/regressions?base=run-a&head=run-b",
		"/api/regressions", // defaults: latest~1 vs latest
	}
	for _, ep := range endpoints {
		resp, body := get(t, ts.URL+ep, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d (%s)", ep, resp.StatusCode, body)
			continue
		}
		etag := resp.Header.Get("ETag")
		if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
			t.Errorf("%s: missing or unquoted ETag %q", ep, etag)
			continue
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", ep)
		}
		resp2, body2 := get(t, ts.URL+ep, etag)
		if resp2.StatusCode != http.StatusNotModified {
			t.Errorf("%s: conditional GET returned %d, want 304", ep, resp2.StatusCode)
		}
		if len(body2) != 0 {
			t.Errorf("%s: 304 carried a body", ep)
		}
		if resp2.Header.Get("ETag") != etag {
			t.Errorf("%s: 304 ETag %q, want %q", ep, resp2.Header.Get("ETag"), etag)
		}
	}
}

// TestIngestInvalidatesListings: a new run must change the ETag (and
// content) of listing-shaped endpoints — the cache-coherence property
// of generation-keyed ETags.
func TestIngestInvalidatesListings(t *testing.T) {
	s, _, ts := serverFixture(t)
	for _, ep := range []string{
		"/api/runs",
		"/api/runs/latest",
		"/api/trend?bench=lat_syscall&machine=Linux%2Fi686",
	} {
		resp, _ := get(t, ts.URL+ep, "")
		etag := resp.Header.Get("ETag")

		if _, err := s.Put(testManifest("run-c-"+ep), testDB(t, 2+float64(len(ep)))); err != nil {
			t.Fatal(err)
		}

		resp2, _ := get(t, ts.URL+ep, etag)
		if resp2.StatusCode != http.StatusOK {
			t.Errorf("%s: after ingest, conditional GET returned %d, want 200 (stale ETag must not 304)", ep, resp2.StatusCode)
		}
		if resp2.Header.Get("ETag") == etag {
			t.Errorf("%s: ETag unchanged after ingest", ep)
		}
	}
}

// TestContentKeyedCachingStable: endpoints keyed by content hashes
// keep their ETag across unrelated ingests — no gratuitous cache
// invalidation on the heavy rendered endpoints.
func TestContentKeyedCachingStable(t *testing.T) {
	s, _, ts := serverFixture(t)
	ep := "/api/compare?ref=run-a&got=run-b"
	resp, body := get(t, ts.URL+ep, "")
	etag := resp.Header.Get("ETag")

	if _, err := s.Put(testManifest("unrelated"), testDB(t, 3)); err != nil {
		t.Fatal(err)
	}
	resp2, body2 := get(t, ts.URL+ep, "")
	if resp2.Header.Get("ETag") != etag || body2 != body {
		t.Errorf("%s: pinned-ref comparison changed after unrelated ingest", ep)
	}
	resp3, _ := get(t, ts.URL+ep, etag)
	if resp3.StatusCode != http.StatusNotModified {
		t.Errorf("%s: conditional GET after unrelated ingest returned %d, want 304", ep, resp3.StatusCode)
	}
}

// TestLatestComparisonFollowsIngest: a comparison against "latest"
// re-renders when a new run lands (the resolved content hash keys the
// ETag).
func TestLatestComparisonFollowsIngest(t *testing.T) {
	s, _, ts := serverFixture(t)
	ep := "/api/compare?ref=run-a&got=latest"
	resp, _ := get(t, ts.URL+ep, "")
	etag := resp.Header.Get("ETag")

	if _, err := s.Put(testManifest("newer"), testDB(t, 4)); err != nil {
		t.Fatal(err)
	}
	resp2, _ := get(t, ts.URL+ep, etag)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("conditional GET after ingest returned %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get("ETag") == etag {
		t.Error("latest-comparison ETag unchanged after ingest")
	}
}

// TestRegressionEndpointShape: identical runs produce the empty
// report; distinct runs report the injected deltas.
func TestRegressionEndpointShape(t *testing.T) {
	s, _, ts := serverFixture(t)
	// Identical content republished under another label dedupes, so
	// compare run-a with itself.
	resp, body := get(t, ts.URL+"/api/regressions?base=run-a&head=run-a", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "no significant changes") {
		t.Errorf("self-comparison is not empty:\n%s", body)
	}

	resp, body = get(t, ts.URL+"/api/regressions?base=run-a&head=run-b", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "REGRESSION") {
		t.Errorf("scaled run reported no regressions:\n%s", body)
	}
	_ = s
}

// TestTrendJSON: the trend series lists every run carrying the scalar,
// in ingest order.
func TestTrendJSON(t *testing.T) {
	_, _, ts := serverFixture(t)
	resp, body := get(t, ts.URL+"/api/trend?bench=lat_syscall&machine=Linux%2Fi686", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var points []TrendPoint
	if err := json.Unmarshal([]byte(body), &points); err != nil {
		t.Fatalf("trend is not JSON: %v\n%s", err, body)
	}
	if len(points) != 2 {
		t.Fatalf("trend has %d points, want 2:\n%s", len(points), body)
	}
	if points[0].Seq >= points[1].Seq {
		t.Errorf("trend not in ingest order: %+v", points)
	}
	if points[0].Value == points[1].Value {
		t.Errorf("distinct runs report identical values: %+v", points)
	}
}

// TestErrorCodes: unknown references 404, bad requests 400.
func TestErrorCodes(t *testing.T) {
	_, _, ts := serverFixture(t)
	for _, c := range []struct {
		ep   string
		want int
	}{
		{"/api/runs/nosuchrun", http.StatusNotFound},
		{"/api/runs/latest~99", http.StatusNotFound},
		{"/api/compare?ref=paper", http.StatusBadRequest},
		{"/api/trend?bench=only", http.StatusBadRequest},
		{"/api/runs/latest/tables/table99", http.StatusInternalServerError},
	} {
		resp, _ := get(t, ts.URL+c.ep, "")
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.ep, resp.StatusCode, c.want)
		}
	}
}

// TestErrorsCarryNoValidator: a failed render must not send an ETag.
// The validator names a successful rendering; an error response that
// carried one would let the client revalidate the failure to a 304
// forever after.
func TestErrorsCarryNoValidator(t *testing.T) {
	s, _, ts := serverFixture(t)
	other := &results.DB{}
	if err := other.Add(results.Entry{Benchmark: "lat_fs_create", Machine: "Sun Ultra1", Unit: "us", Scalar: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(Manifest{Label: "disjoint", Machines: []string{"Sun Ultra1"},
		Options: "{}", CodeVersion: "test-v1"}, other); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{
		"/api/runs/latest/tables/table99",     // render fails: unknown table
		"/api/compare?ref=run-a&got=disjoint", // render fails: nothing in common
	} {
		resp, body := get(t, ts.URL+ep, "")
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotModified {
			t.Errorf("%s: status %d, want an error", ep, resp.StatusCode)
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			t.Errorf("%s: error response carried ETag %q: %s", ep, etag, body)
		}
	}
	// A comparison with nothing in common is the client's mistake, not
	// a server fault.
	resp, _ := get(t, ts.URL+"/api/compare?ref=run-a&got=disjoint", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("disjoint compare: status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsExposed: the server counts its traffic in lmbench_store_*
// families.
func TestMetricsExposed(t *testing.T) {
	_, _, ts := serverFixture(t)
	resp, _ := get(t, ts.URL+"/api/runs", "")
	etag := resp.Header.Get("ETag")
	_, _ = get(t, ts.URL+"/api/runs", etag) // a 304
	_, body := get(t, ts.URL+"/metrics", "")
	for _, want := range []string{
		"lmbench_store_http_requests_total",
		"lmbench_store_http_not_modified_total",
		"lmbench_store_render_cache",
		"lmbench_store_runs 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

// TestMachinesEndpoint covers the catalog listing and per-profile
// routes: listing shape, ETag revalidation, slash-bearing names via
// the path wildcard, canonical profile bytes, and 404s.
func TestMachinesEndpoint(t *testing.T) {
	_, _, ts := serverFixture(t)

	resp, body := get(t, ts.URL+"/api/machines", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/machines: %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("/api/machines carries no ETag")
	}
	var list []machineInfo
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("listing is not JSON: %v", err)
	}
	if len(list) < 25 {
		t.Errorf("listing has %d machines, want >= 25", len(list))
	}
	byName := map[string]machineInfo{}
	for _, mi := range list {
		if mi.Fingerprint == "" || mi.Source == "" {
			t.Errorf("machine %q missing fingerprint/source: %+v", mi.Name, mi)
		}
		byName[mi.Name] = mi
	}
	if mi := byName["Linux/i686"]; mi.Source != machines.SourceBuiltin {
		t.Errorf("Linux/i686 source = %q, want builtin", mi.Source)
	}
	if mi := byName["Modern/desktop-3GHz"]; mi.Source != machines.SourceCalibrated {
		t.Errorf("Modern/desktop-3GHz source = %q, want calibrated", mi.Source)
	}
	if resp, _ := get(t, ts.URL+"/api/machines", etag); resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional listing GET: %d, want 304", resp.StatusCode)
	}

	// Slash-bearing name through the wildcard; body is the canonical
	// encoding.
	resp, body = get(t, ts.URL+"/api/machines/Linux/i686", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/machines/Linux/i686: %d", resp.StatusCode)
	}
	p, err := machines.DecodeProfile([]byte(body))
	if err != nil {
		t.Fatalf("profile body does not decode: %v", err)
	}
	if p.Name != "Linux/i686" {
		t.Errorf("profile name %q", p.Name)
	}
	want, _ := machines.ByName("Linux/i686")
	canon, err := machines.EncodeProfile(want)
	if err != nil {
		t.Fatal(err)
	}
	if body != string(canon) {
		t.Error("profile body differs from canonical encoding")
	}
	petag := resp.Header.Get("ETag")
	if resp, _ := get(t, ts.URL+"/api/machines/Linux/i686", petag); resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional profile GET: %d, want 304", resp.StatusCode)
	}

	if resp, _ := get(t, ts.URL+"/api/machines/No/Such/Machine", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown machine: %d, want 404", resp.StatusCode)
	}

	// A custom catalog changes what the same routes serve, and the
	// profile ETag tracks the fingerprint.
	cat := machines.NewCatalog()
	custom, _ := machines.ByName("Linux/i586")
	custom.Name = "Custom/one"
	if err := cat.Add(custom, machines.SourceFile); err != nil {
		t.Fatal(err)
	}
	srv2 := &Server{Store: nil, Catalog: cat}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, body = get(t, ts2.URL+"/api/machines", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("custom catalog listing: %d", resp.StatusCode)
	}
	list = nil
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "Custom/one" || list[0].Source != machines.SourceFile {
		t.Errorf("custom listing: %+v", list)
	}
	if resp, _ := get(t, ts2.URL+"/api/machines/Custom/one", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("custom profile GET: %d", resp.StatusCode)
	}
}
