// Package store is the persistent, content-addressed multi-run
// results store — the paper's cross-machine comparison database grown
// into a service.
//
// lmbench's third contribution was "an extensible database of results";
// users ran the suite, mailed in their result files, and the paper's
// tables were produced from the merged database. This package is that
// workflow at production scale: runs are published into a durable
// store (locally or streamed over the fleet's wire framing), keyed by
// a hash of what produced them, and served back over HTTP as
// paper-style comparison tables, per-benchmark trend series, and
// automatic regression reports.
//
// # Content addressing
//
// Two hashes organize the store:
//
//   - The content hash is the SHA-256 of the database's canonical
//     encoding. results.DB encodes entries in a fixed (benchmark,
//     machine) order, so the hash is a pure function of the entry set:
//     a run published as out-of-order fragments, re-assembled by the
//     daemon and re-encoded, lands on the same hash the publisher
//     computed locally — verified at commit time.
//   - The run ID is the SHA-256 of the run manifest: the machine
//     profiles measured, a fingerprint of the harness options, the
//     code version, and the content hash. Deterministic simulator runs
//     of the same configuration therefore dedupe to one run (a second
//     publish is an idempotent no-op), while wall-clock runs of the
//     same machine stay distinct through their differing content.
//
// On disk the store is two directories: objects/ holds database blobs
// named by content hash (shared by duplicate-content runs), runs/
// holds one manifest JSON per run ID. Both are written atomically
// (temp file + rename), so a crashed publish leaves no torn shard.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/results"
)

// Manifest describes one stored run: what was measured, with which
// options, by which code, and the content hash of the resulting
// database. RunID, Seq and Created are assigned by the store on Put;
// publishers fill the rest.
type Manifest struct {
	// RunID is the hex SHA-256 of the manifest key (machines, options
	// fingerprint, code version, content hash) — the name the run is
	// stored and queried under.
	RunID string `json:"run_id"`
	// Label is a human-readable tag for the run ("nightly-2026-08-08",
	// "pre-refactor"); purely descriptive, not part of the key.
	Label string `json:"label,omitempty"`
	// Machines are the benchmark targets, in run order.
	Machines []string `json:"machines"`
	// Options is the fingerprint of the normalized harness options;
	// see Fingerprint.
	Options string `json:"options"`
	// CodeVersion identifies the code that produced the run; see
	// CodeVersion.
	CodeVersion string `json:"code_version"`
	// ContentHash is the hex SHA-256 of the canonical database
	// encoding — the value HTTP ETags are derived from.
	ContentHash string `json:"content_hash"`
	// Entries counts database entries, for listings.
	Entries int `json:"entries"`
	// Seq is the store-assigned ingest sequence number; trend series
	// order runs by it.
	Seq int64 `json:"seq"`
	// Created is the ingest time.
	Created time.Time `json:"created"`
}

// Fingerprint canonicalizes harness options into a deterministic
// string for run keying: the options are normalized (defaults filled
// in, so "zero value" and "explicit default" fingerprint identically)
// and JSON-encoded. core.Options contains no maps, so encoding/json
// emits fields in fixed declaration order.
func Fingerprint(o core.Options) (string, error) {
	n, err := o.Normalize()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// CodeVersion identifies the running code for run manifests: the VCS
// revision stamped into the build when present, else "dev". Builds
// from the same sources key their runs identically; a rebuilt world
// gets a fresh key, which is exactly when regression reports between
// runs become interesting.
func CodeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "dev"
}

// EncodeDB returns the canonical encoding of db and its content hash.
func EncodeDB(db *results.DB) (enc []byte, contentHash string, err error) {
	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:]), nil
}

// ContentHash returns the hex SHA-256 of the canonical encoding of db.
func ContentHash(db *results.DB) (string, error) {
	_, h, err := EncodeDB(db)
	return h, err
}

// RunIDFor computes the run key for a filled manifest: the SHA-256
// over (machines, options fingerprint, code version, content hash).
func RunIDFor(m Manifest) string {
	h := sha256.New()
	fmt.Fprintf(h, "lmbench-run/v1\n")
	fmt.Fprintf(h, "machines %s\n", strings.Join(m.Machines, "\x00"))
	fmt.Fprintf(h, "options %s\n", m.Options)
	fmt.Fprintf(h, "version %s\n", m.CodeVersion)
	fmt.Fprintf(h, "content %s\n", m.ContentHash)
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a directory-backed run store. One process owns a store at
// a time (the daemon, or a CLI publishing locally); within the
// process it is safe for concurrent use.
type Store struct {
	dir string

	mu sync.Mutex // serializes Put's read-max-seq → write sequence
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "runs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash)
}

func (s *Store) manifestPath(runID string) string {
	return filepath.Join(s.dir, "runs", runID+".json")
}

// WriteFileAtomic lands data at path via a temp file + rename, so a
// crash mid-write never leaves a torn shard for readers to trip over —
// and durably: the temp file is fsynced before the rename (else the
// rename can land while the data hasn't, and a power cut yields a
// full-length file of zeros at the final name) and the parent
// directory is fsynced after it (else the rename itself can vanish and
// a committed object silently disappears). Exported for the unit cache,
// whose fragments need the same crash discipline as store objects.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Filesystems that refuse to fsync directories are tolerated —
// there the rename durability is the platform's best effort anyway.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Put stores db under m. The store fills ContentHash, Entries, RunID,
// Seq and Created; the returned manifest is the stored one. Publishing
// a run whose key already exists is an idempotent no-op returning the
// existing manifest — content addressing makes "already have it" a
// hash comparison, not a diff.
func (s *Store) Put(m Manifest, db *results.DB) (Manifest, error) {
	if len(m.Machines) == 0 {
		return Manifest{}, errors.New("store: manifest needs at least one machine")
	}
	enc, hash, err := EncodeDB(db)
	if err != nil {
		return Manifest{}, err
	}
	m.ContentHash = hash
	m.Entries = db.Len()
	m.RunID = RunIDFor(m)

	s.mu.Lock()
	defer s.mu.Unlock()

	if existing, ok, err := s.get(m.RunID); err != nil {
		return Manifest{}, err
	} else if ok {
		// Same key ⇒ same content hash by construction; the blob is
		// already present. Keep the original manifest (first publish
		// wins the label and sequence slot).
		return existing, nil
	}

	if _, err := os.Stat(s.objectPath(hash)); errors.Is(err, os.ErrNotExist) {
		if err := WriteFileAtomic(s.objectPath(hash), enc); err != nil {
			return Manifest{}, err
		}
	} else if err != nil {
		return Manifest{}, err
	}

	maxSeq, err := s.maxSeq()
	if err != nil {
		return Manifest{}, err
	}
	m.Seq = maxSeq + 1
	if m.Created.IsZero() {
		m.Created = time.Now().UTC()
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	if err := WriteFileAtomic(s.manifestPath(m.RunID), append(mb, '\n')); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

func (s *Store) maxSeq() (int64, error) {
	runs, err := s.runs()
	if err != nil {
		return 0, err
	}
	var max int64
	for _, r := range runs {
		if r.Seq > max {
			max = r.Seq
		}
	}
	return max, nil
}

// readManifest parses one manifest shard, rejecting structurally
// unusable ones (missing key fields) so a corrupt shard surfaces as an
// error rather than a phantom run.
func readManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}
	if m.RunID == "" || m.ContentHash == "" || len(m.Machines) == 0 {
		return Manifest{}, fmt.Errorf("store: %s: manifest missing run_id, content_hash or machines", filepath.Base(path))
	}
	return m, nil
}

func (s *Store) runs() ([]Manifest, error) {
	des, err := os.ReadDir(filepath.Join(s.dir, "runs"))
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(des))
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		m, err := readManifest(filepath.Join(s.dir, "runs", name))
		if err != nil {
			return nil, err
		}
		if m.RunID != strings.TrimSuffix(name, ".json") {
			return nil, fmt.Errorf("store: %s: manifest claims run_id %s", name, m.RunID)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].RunID < out[j].RunID
	})
	return out, nil
}

// Runs lists every stored run in ingest order (Seq ascending).
func (s *Store) Runs() ([]Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs()
}

func (s *Store) get(runID string) (Manifest, bool, error) {
	m, err := readManifest(s.manifestPath(runID))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// Get returns the manifest stored under the exact runID.
func (s *Store) Get(runID string) (Manifest, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(runID)
}

// Object returns the raw canonical database bytes for a content hash.
func (s *Store) Object(contentHash string) ([]byte, error) {
	return os.ReadFile(s.objectPath(contentHash))
}

// DB loads and decodes the database of the run at ref (see Resolve),
// verifying the blob still matches its content hash — a silently
// corrupted object is an error, never bad data served as good.
func (s *Store) DB(ref string) (Manifest, *results.DB, error) {
	m, err := s.Resolve(ref)
	if err != nil {
		return Manifest{}, nil, err
	}
	enc, err := s.Object(m.ContentHash)
	if err != nil {
		return Manifest{}, nil, err
	}
	sum := sha256.Sum256(enc)
	if got := hex.EncodeToString(sum[:]); got != m.ContentHash {
		return Manifest{}, nil, fmt.Errorf("store: object %s corrupt: content hashes to %s", m.ContentHash, got)
	}
	db, err := results.Decode(bytes.NewReader(enc))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("store: object %s: %w", m.ContentHash, err)
	}
	return m, db, nil
}

// Resolve maps a run reference to its manifest. A reference is one of:
//
//   - "latest" or "latest~N": the Nth-most-recent run by ingest order
//   - a full run ID or a unique prefix of one (≥ 6 hex chars)
//   - a run label (must match exactly one run)
func (s *Store) Resolve(ref string) (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ref == "" {
		return Manifest{}, errors.New("store: empty run reference")
	}
	// Only a full 64-hex ID touches the filesystem directly; anything
	// else (labels in particular) resolves against the listed run set,
	// so a hostile reference can never traverse outside runs/.
	if len(ref) == 64 && isHex(ref) {
		if m, ok, err := s.get(ref); err != nil {
			return Manifest{}, err
		} else if ok {
			return m, nil
		}
	}
	runs, err := s.runs()
	if err != nil {
		return Manifest{}, err
	}
	if ref == "latest" || strings.HasPrefix(ref, "latest~") {
		back := 0
		if rest, ok := strings.CutPrefix(ref, "latest~"); ok {
			back, err = strconv.Atoi(rest)
			if err != nil || back < 0 {
				return Manifest{}, fmt.Errorf("store: bad reference %q", ref)
			}
		}
		if back >= len(runs) {
			return Manifest{}, fmt.Errorf("store: %q: only %d run(s) stored", ref, len(runs))
		}
		return runs[len(runs)-1-back], nil
	}
	var hits []Manifest
	if len(ref) >= 6 && isHex(ref) {
		for _, m := range runs {
			if strings.HasPrefix(m.RunID, ref) {
				hits = append(hits, m)
			}
		}
	}
	if len(hits) == 0 {
		for _, m := range runs {
			if m.Label == ref {
				hits = append(hits, m)
			}
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return Manifest{}, fmt.Errorf("store: no run matches %q", ref)
	default:
		return Manifest{}, fmt.Errorf("store: reference %q is ambiguous (%d matches)", ref, len(hits))
	}
}

func isHex(s string) bool {
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return false
		}
	}
	return true
}

// Generation fingerprints the run set: the SHA-256 over every (run ID,
// seq) pair in order. Any ingest changes it, so listing- and
// trend-style HTTP responses use it as their ETag input — a cached
// "latest" comparison is invalidated the moment a new run lands.
func (s *Store) Generation() (string, error) {
	runs, err := s.Runs()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "lmbench-store-gen/v1\n")
	for _, m := range runs {
		fmt.Fprintf(h, "%s %d\n", m.RunID, m.Seq)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
