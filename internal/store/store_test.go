package store

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/results"
)

// testDB builds a small, representative database: scalars on two
// machines, a series, and quality attrs.
func testDB(t *testing.T, scale float64) *results.DB {
	t.Helper()
	db := &results.DB{}
	add := func(e results.Entry) {
		if err := db.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	add(results.Entry{Benchmark: "lat_syscall", Machine: "Linux/i686", Unit: "us", Scalar: 4.2 * scale,
		Attrs: map[string]string{"quality.samples": "3", "quality.spread": "0.01"}})
	add(results.Entry{Benchmark: "lat_syscall", Machine: "HP K210", Unit: "us", Scalar: 3.1 * scale})
	add(results.Entry{Benchmark: "bw_mem.bcopy_libc", Machine: "Linux/i686", Unit: "MB/s", Scalar: 42 / scale})
	add(results.Entry{Benchmark: "lat_mem_rd", Machine: "Linux/i686", Unit: "ns",
		Series: []results.Point{
			{X: 512, X2: 8, Y: 5.1},
			{X: 1024, X2: 8, Y: 5.2 * scale},
			{X: 1 << 20, X2: 64, Y: 180 * scale},
		}})
	return db
}

func testManifest(label string) Manifest {
	return Manifest{
		Label:       label,
		Machines:    []string{"Linux/i686", "HP K210"},
		Options:     `{"MemSize":8388608}`,
		CodeVersion: "test-v1",
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 1)
	wantEnc, wantHash, err := EncodeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Put(testManifest("first"), db)
	if err != nil {
		t.Fatal(err)
	}
	if m.ContentHash != wantHash {
		t.Errorf("content hash %s, want %s", m.ContentHash, wantHash)
	}
	if m.RunID == "" || m.Seq != 1 || m.Entries != db.Len() {
		t.Errorf("stored manifest incomplete: %+v", m)
	}
	if m.RunID != RunIDFor(m) {
		t.Errorf("run ID %s does not match its manifest key %s", m.RunID, RunIDFor(m))
	}

	// The stored object is the canonical encoding, byte for byte.
	obj, err := s.Object(m.ContentHash)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj) != string(wantEnc) {
		t.Error("stored object differs from the canonical encoding")
	}

	// And the decoded run re-encodes identically (round trip through
	// the store preserves content addressing).
	got, db2, err := s.DB(m.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != m.RunID {
		t.Errorf("DB resolved run %s, want %s", got.RunID, m.RunID)
	}
	h2, err := ContentHash(db2)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != wantHash {
		t.Errorf("store round trip changed the content hash: %s != %s", h2, wantHash)
	}
}

// TestPutIdempotent: publishing the same run twice is a no-op — the
// content-addressed key makes "already have it" a hash comparison.
func TestPutIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Put(testManifest("a"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Put(testManifest("a"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if second.RunID != first.RunID || second.Seq != first.Seq {
		t.Errorf("re-publish was not idempotent: %+v vs %+v", second, first)
	}
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Errorf("store holds %d runs after duplicate publish, want 1", len(runs))
	}
}

// TestPutDistinguishesRuns: different content, options or code version
// produce different run IDs; same content under a different label does
// not.
func TestPutDistinguishesRuns(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Put(testManifest("base"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	relabeled, err := s.Put(testManifest("other-label"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if relabeled.RunID != base.RunID {
		t.Error("label changed the run key; it must be descriptive only")
	}
	if relabeled.Label != "base" {
		t.Errorf("idempotent re-publish rewrote the label to %q", relabeled.Label)
	}

	changedContent, err := s.Put(testManifest("base"), testDB(t, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if changedContent.RunID == base.RunID {
		t.Error("different content deduped onto the same run ID")
	}
	if changedContent.Seq != base.Seq+1 {
		t.Errorf("second distinct run got seq %d, want %d", changedContent.Seq, base.Seq+1)
	}

	mv := testManifest("base")
	mv.CodeVersion = "test-v2"
	changedVersion, err := s.Put(mv, testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if changedVersion.RunID == base.RunID {
		t.Error("different code version deduped onto the same run ID")
	}
}

func TestResolve(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Put(testManifest("run-a"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Put(testManifest("run-b"), testDB(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		ref  string
		want string
	}{
		{first.RunID, first.RunID},
		{first.RunID[:12], first.RunID},
		{"run-a", first.RunID},
		{"run-b", second.RunID},
		{"latest", second.RunID},
		{"latest~1", first.RunID},
	}
	for _, c := range cases {
		m, err := s.Resolve(c.ref)
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.ref, err)
			continue
		}
		if m.RunID != c.want {
			t.Errorf("Resolve(%q) = %s, want %s", c.ref, m.RunID, c.want)
		}
	}

	for _, bad := range []string{"", "latest~2", "latest~-1", "nope", "deadbeef99", "../../etc/passwd"} {
		if _, err := s.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestGenerationChangesOnIngest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g0, err := s.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testManifest("a"), testDB(t, 1)); err != nil {
		t.Fatal(err)
	}
	g1, err := s.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if g0 == g1 {
		t.Error("generation unchanged by ingest")
	}
	// Idempotent re-publish must NOT change the generation (no cache
	// invalidation for a no-op).
	if _, err := s.Put(testManifest("a"), testDB(t, 1)); err != nil {
		t.Fatal(err)
	}
	g2, err := s.Generation()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("generation changed by an idempotent re-publish")
	}
}

func TestFingerprintNormalizes(t *testing.T) {
	zero, err := Fingerprint(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Fingerprint(core.Options{MemSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if zero != explicit {
		t.Error("zero options and explicit defaults fingerprint differently")
	}
	other, err := Fingerprint(core.Options{MemSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if zero == other {
		t.Error("different options fingerprint identically")
	}
	if _, err := Fingerprint(core.Options{MemSize: -1}); err == nil {
		t.Error("invalid options fingerprinted without error")
	}
}

func TestCorruptObjectDetected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Put(testManifest("a"), testDB(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Flip the blob on disk; the content-hash check must refuse it.
	obj, err := s.Object(m.ContentHash)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(obj), "lat_syscall", "lat_hijack!", 1)
	if err := WriteFileAtomic(s.objectPath(m.ContentHash), []byte(corrupted)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.DB(m.RunID); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupted object served without error (err=%v)", err)
	}
}
