package timing

import (
	"context"
	"sync/atomic"

	"repro/internal/ptime"
)

// Probe is an optional per-run observer of the measurement harness —
// the seam the observability layer's span tracer hangs off. A probe
// rides on the context (WithProbe); BenchLoopCtx reports calibration
// progress and per-batch samples to it.
//
// Out-of-band guarantee: every probe call happens strictly between
// clock readings — after a batch's closing reading and before the next
// batch's opening reading — never inside a timed interval. A probe can
// therefore log, aggregate or serialize freely without adding a single
// tick to any recorded sample. (On virtual clocks this is moot — they
// advance only when simulated work is charged — but on wall clocks it
// is the property that keeps observability out of the results.)
type Probe interface {
	// Calibrated reports the auto-scaled per-batch iteration count and
	// the clock resolution the run compensates for, once per BenchLoop
	// after the scaling phase settles.
	Calibrated(n int64, resolution ptime.Duration)
	// Sample reports one batch: its total elapsed time (by the harness
	// clock — virtual time on simulated machines) and the iteration
	// count it spanned. timed is false for auto-scaling probes and true
	// for the recorded measurement samples.
	Sample(elapsed ptime.Duration, n int64, timed bool)
}

type probeKey struct{}

// WithProbe returns a context carrying p; BenchLoopCtx calls made under
// it report their calibration steps and samples to p.
func WithProbe(ctx context.Context, p Probe) context.Context {
	return context.WithValue(ctx, probeKey{}, p)
}

// ProbeFrom extracts the probe installed by WithProbe, or nil.
func ProbeFrom(ctx context.Context) Probe {
	p, _ := ctx.Value(probeKey{}).(Probe)
	return p
}

// Package-level harness counters. They are always on: one atomic add
// between batches costs nanoseconds and never lands inside a timed
// interval, so the numbers a metrics scrape sees are exactly the work
// the harness did, with zero perturbation of what it measured.
var harness struct {
	benchLoops   atomic.Int64
	samples      atomic.Int64
	calibrations atomic.Int64
	resolutions  atomic.Int64
	lastRes      atomic.Int64
}

// HarnessStats is a snapshot of the harness's cumulative activity,
// for the observability layer's /metrics endpoint.
type HarnessStats struct {
	// BenchLoops counts completed BenchLoop/BenchLoopCtx calibrations
	// (each produces one Measurement).
	BenchLoops int64
	// Samples counts timed measurement batches.
	Samples int64
	// CalibrationBatches counts auto-scaling (untimed-result) batches.
	CalibrationBatches int64
	// ResolutionEstimates counts EstimateResolution calls.
	ResolutionEstimates int64
	// LastResolution is the most recent resolution estimate.
	LastResolution ptime.Duration
}

// ReadHarnessStats returns the current counter values. Counters are
// process-global and monotonic; callers diff snapshots for rates.
func ReadHarnessStats() HarnessStats {
	return HarnessStats{
		BenchLoops:          harness.benchLoops.Load(),
		Samples:             harness.samples.Load(),
		CalibrationBatches:  harness.calibrations.Load(),
		ResolutionEstimates: harness.resolutions.Load(),
		LastResolution:      ptime.Duration(harness.lastRes.Load()),
	}
}
