package timing

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ptime"
	"repro/internal/sim"
)

// countingClock wraps opClock and counts raw reads.
type countingClock struct {
	opClock
	reads int
}

func (c *countingClock) Now() ptime.Duration {
	c.reads++
	return c.opClock.Now()
}

// exactClock is a virtual clock declaring its own resolution.
type exactClock struct {
	countingClock
	res ptime.Duration
}

func (c *exactClock) ExactResolution() ptime.Duration { return c.res }

func TestEstimateResolutionExactClockSkipsProbing(t *testing.T) {
	clk := &exactClock{res: 7}
	if got := EstimateResolution(clk); got != 7 {
		t.Errorf("resolution = %v, want 7", got)
	}
	if clk.reads != 0 {
		t.Errorf("exact clock was probed %d times; ExactResolver must short-circuit", clk.reads)
	}
	// The simulator's clock advertises exactness: one ptime unit, no
	// reads burned. This is what spares every simulated BenchLoop the
	// ~2M-read probe of a clock that cannot tick while probed.
	if got := EstimateResolution(&sim.Clock{}); got != 1 {
		t.Errorf("sim clock resolution = %v, want 1", got)
	}
}

// steppingClock advances by step once every k raw reads, emulating a
// very coarse quantized wall clock where transitions are many reads
// apart.
type steppingClock struct {
	now   ptime.Duration
	step  ptime.Duration
	k     int
	reads int
}

func (c *steppingClock) Now() ptime.Duration {
	c.reads++
	if c.reads%c.k == 0 {
		c.now += c.step
	}
	return c.now
}

func TestEstimateResolutionCapsProbeSpan(t *testing.T) {
	// A 100ms quantum, 1000 reads apart: the estimate is the quantum
	// after the very first delta; waiting out four full quanta buys
	// nothing. The span cap must stop probing once ≥250ms of clock time
	// is covered (3 transitions here) instead of collecting all four.
	clk := &steppingClock{step: 100 * ptime.Millisecond, k: 1000}
	got := EstimateResolution(clk)
	if got != 100*ptime.Millisecond {
		t.Errorf("resolution = %v, want 100ms", got)
	}
	if clk.reads > 3500 {
		t.Errorf("probe used %d reads; span cap should stop near 3000", clk.reads)
	}
}

func TestEstimateResolutionStuckClockReadBudget(t *testing.T) {
	// A stuck clock without the ExactResolver capability still
	// terminates via the read budget and is treated as exact.
	clk := &countingClock{}
	if got := EstimateResolution(clk); got != 1 {
		t.Errorf("stuck clock resolution = %v, want 1", got)
	}
	if clk.reads > 2_000_001 {
		t.Errorf("probe used %d reads; budget is 2M", clk.reads)
	}
}

func TestQuantizedClockNegativeStepPassthrough(t *testing.T) {
	base := &opClock{}
	q := &QuantizedClock{Base: base, Step: -5 * ptime.Millisecond}
	var prev ptime.Duration
	for i := 0; i < 10; i++ {
		base.advance(3 * ptime.Millisecond)
		now := q.Now()
		if now != base.now {
			t.Fatalf("negative step must pass through: got %v, base %v", now, base.now)
		}
		if now < prev {
			t.Fatalf("clock went backwards: %v after %v", now, prev)
		}
		prev = now
	}
	// Step zero likewise (and no mod-by-zero panic).
	q.Step = 0
	if got := q.Now(); got != base.now {
		t.Errorf("zero step: got %v, want %v", got, base.now)
	}
}

// TestBenchLoopCancelDuringCalibration pins prompt cancellation inside
// the auto-scaling phase: when the context dies during the calibration
// batch that satisfies the target, BenchLoopCtx must return ctx.Err()
// without running the warm-up batch (one more op(n) on a stalled
// machine could block for the full batch) and without starting another
// timed batch.
func TestBenchLoopCancelDuringCalibration(t *testing.T) {
	clk := &countingClock{}
	ctx, cancel := context.WithCancel(context.Background())
	calls, readsAtCancel := 0, 0
	_, err := BenchLoopCtx(ctx, clk, Options{MinSampleTime: ptime.Microsecond, Samples: 5}, func(n int64) error {
		calls++
		if calls == 1 {
			// Too short: forces a second calibration batch.
			clk.advance(10 * ptime.Nanosecond)
			return nil
		}
		// This batch satisfies the target — and the run is cancelled
		// while it executes.
		clk.advance(10 * ptime.Microsecond)
		cancel()
		readsAtCancel = clk.reads
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Errorf("op ran %d times, want 2 (no warm-up batch after cancellation)", calls)
	}
	// Only the in-flight batch's closing reading may follow the
	// cancellation; no further batch may start.
	if clk.reads > readsAtCancel+1 {
		t.Errorf("%d clock reads after cancellation, want <= 1", clk.reads-readsAtCancel)
	}
}

// orderingProbe records the interleaving of clock reads, op batches and
// probe calls to prove the out-of-band guarantee: no probe call ever
// lands inside a timed interval (between a batch's opening and closing
// clock readings).
type orderingProbe struct {
	log *[]string
}

func (p orderingProbe) Calibrated(n int64, res ptime.Duration)   { *p.log = append(*p.log, "calibrated") }
func (p orderingProbe) Sample(d ptime.Duration, n int64, _ bool) { *p.log = append(*p.log, "sample") }

type loggingClock struct {
	opClock
	log *[]string
}

func (c *loggingClock) Now() ptime.Duration {
	*c.log = append(*c.log, "read")
	return c.opClock.now
}

func TestProbeCallsAreOutOfBand(t *testing.T) {
	var log []string
	clk := &loggingClock{log: &log}
	ctx := WithProbe(context.Background(), orderingProbe{log: &log})
	_, err := BenchLoopCtx(ctx, clk, Options{
		MinSampleTime: ptime.Microsecond, Samples: 3, NoWarmup: true, Resolution: 1,
	}, func(n int64) error {
		log = append(log, "op")
		clk.opClock.chargeOp(500*ptime.Nanosecond, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("no activity logged")
	}
	// Every batch is the contiguous triple read,op,read: anything
	// (sample, calibrated) appearing between a batch's readings would
	// be in-band perturbation.
	for i, e := range log {
		if e != "op" {
			continue
		}
		if i == 0 || log[i-1] != "read" || i+1 >= len(log) || log[i+1] != "read" {
			t.Fatalf("batch at %d not bracketed by reads: %v", i, log)
		}
	}
	// And the probe did fire.
	samples, calibrated := 0, 0
	for _, e := range log {
		switch e {
		case "sample":
			samples++
		case "calibrated":
			calibrated++
		}
	}
	if samples < 3 || calibrated != 1 {
		t.Errorf("probe saw %d samples, %d calibrations; want >=3 and 1", samples, calibrated)
	}
}

func TestHarnessStatsCount(t *testing.T) {
	before := ReadHarnessStats()
	clk := &opClock{}
	_, err := BenchLoop(clk, Options{MinSampleTime: ptime.Microsecond, Samples: 4}, func(n int64) error {
		clk.chargeOp(200*ptime.Nanosecond, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := ReadHarnessStats()
	if d := after.BenchLoops - before.BenchLoops; d < 1 {
		t.Errorf("BenchLoops delta = %d, want >= 1", d)
	}
	if d := after.Samples - before.Samples; d < 4 {
		t.Errorf("Samples delta = %d, want >= 4", d)
	}
	if d := after.CalibrationBatches - before.CalibrationBatches; d < 1 {
		t.Errorf("CalibrationBatches delta = %d, want >= 1", d)
	}
	if d := after.ResolutionEstimates - before.ResolutionEstimates; d < 1 {
		t.Errorf("ResolutionEstimates delta = %d, want >= 1", d)
	}
}
