package timing

import (
	"context"
	"sync"
)

// Recorder collects every Measurement taken during one experiment
// attempt. The suite's quality gate installs one on the attempt
// context; BenchLoopCtx records into it, so the gate can inspect the
// raw per-batch samples that are otherwise collapsed into the
// min-of-N scalar. Safe for concurrent use.
type Recorder struct {
	mu sync.Mutex
	ms []Measurement
}

// Record appends one measurement.
func (r *Recorder) Record(m Measurement) {
	r.mu.Lock()
	r.ms = append(r.ms, m)
	r.mu.Unlock()
}

// Measurements returns a copy of everything recorded so far.
func (r *Recorder) Measurements() []Measurement {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Measurement, len(r.ms))
	copy(out, r.ms)
	return out
}

// Reset discards all recorded measurements but keeps the backing
// storage, so a recorder reused across attempts (the suite keeps one
// per experiment) stops allocating once the slice has grown to the
// experiment's measurement count.
func (r *Recorder) Reset() {
	r.mu.Lock()
	for i := range r.ms {
		r.ms[i] = Measurement{} // drop sample-slice references
	}
	r.ms = r.ms[:0]
	r.mu.Unlock()
}

type recorderKey struct{}

// WithRecorder returns a context carrying r; BenchLoopCtx calls made
// under it record their measurements into r.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

// RecorderFrom extracts the recorder installed by WithRecorder, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}
