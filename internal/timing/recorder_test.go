package timing

import (
	"testing"

	"repro/internal/ptime"
)

func TestRecorderRecordAndReset(t *testing.T) {
	r := &Recorder{}
	r.Record(Measurement{PerOp: ptime.Microsecond, N: 4,
		Samples: []ptime.Duration{ptime.Microsecond}})
	r.Record(Measurement{PerOp: 2 * ptime.Microsecond, N: 8})
	if got := r.Measurements(); len(got) != 2 {
		t.Fatalf("got %d measurements, want 2", len(got))
	}
	r.Reset()
	if got := r.Measurements(); len(got) != 0 {
		t.Fatalf("after Reset: got %d measurements, want 0", len(got))
	}
	r.Record(Measurement{PerOp: ptime.Nanosecond, N: 1})
	if got := r.Measurements(); len(got) != 1 || got[0].N != 1 {
		t.Fatalf("after reuse: got %+v", got)
	}
}

// TestRecorderReuseDoesNotAllocate is the satellite regression test for
// the suite's per-experiment recorder reuse: once the backing slice has
// grown to an attempt's measurement count, further Reset+Record cycles
// (retries, quality-gate re-measurements) must not allocate.
func TestRecorderReuseDoesNotAllocate(t *testing.T) {
	r := &Recorder{}
	m := Measurement{PerOp: ptime.Microsecond, N: 16}
	const perAttempt = 8
	for i := 0; i < perAttempt; i++ {
		r.Record(m)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset()
		for i := 0; i < perAttempt; i++ {
			r.Record(m)
		}
	})
	if allocs != 0 {
		t.Errorf("Reset+Record cycle allocates %v times per attempt, want 0", allocs)
	}
}
