// Package timing implements the lmbench measurement harness.
//
// The paper's methodology (§3.4) has three ingredients, all reproduced
// here:
//
//   - Clock-resolution compensation: some 1995 systems had 10ms
//     gettimeofday resolution, so every benchmark runs its operation in a
//     loop sized so the whole loop spans many clock ticks, then divides by
//     the loop count. BenchLoop auto-scales the iteration count until one
//     timed sample lasts at least Options.MinSampleTime and at least
//     ResolutionMultiple ticks of the measured clock resolution.
//
//   - Cache warming: benchmarks that expect data to be cached are run
//     several times and only later results are recorded. BenchLoop always
//     performs one untimed warm-up batch unless Options.NoWarmup is set.
//
//   - Variability: results such as context switching vary up to 30%
//     run-to-run; lmbench reports the minimum of repeated measurements.
//     BenchLoop takes Options.Samples samples and Measurement.PerOp is
//     derived from the fastest one.
//
// All time flows through the Clock interface, so the same harness drives
// both the host backend (real time.Now) and the simulator (exact virtual
// clock that only advances when simulated work is charged).
package timing

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ptime"
)

// Clock is a monotonic time source. Readings are relative to an
// arbitrary epoch; only differences are meaningful.
type Clock interface {
	Now() ptime.Duration
}

// WallClock reads the host's monotonic clock.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a Clock backed by time.Now.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now returns time elapsed since the clock was created.
func (w *WallClock) Now() ptime.Duration { return ptime.FromStd(time.Since(w.epoch)) }

// RealTime marks the wall clock as reading real time; see IsRealTime.
func (w *WallClock) RealTime() bool { return true }

// RealTimer is an optional Clock capability: clocks whose readings come
// from the real machine rather than a simulation report RealTime true.
// The suite scheduler serializes experiments on real-time clocks so
// concurrent work never perturbs a wall-clock measurement.
type RealTimer interface {
	RealTime() bool
}

// IsRealTime reports whether c measures real wall time. Virtual
// (simulated) clocks do not implement RealTimer and are never
// real-time.
func IsRealTime(c Clock) bool {
	rt, ok := c.(RealTimer)
	return ok && rt.RealTime()
}

// QuantizedClock wraps a Clock and truncates readings to Step, emulating
// the coarse 10ms gettimeofday of some 1995 systems. It exists so the
// harness's resolution compensation can be exercised deterministically.
type QuantizedClock struct {
	Base Clock
	Step ptime.Duration
}

// Now returns the base reading truncated down to a multiple of Step.
func (q *QuantizedClock) Now() ptime.Duration {
	t := q.Base.Now()
	if q.Step <= 0 {
		return t
	}
	return t - t%q.Step
}

// RealTime forwards to the base clock: quantization does not change
// whether readings come from real time.
func (q *QuantizedClock) RealTime() bool { return IsRealTime(q.Base) }

// ExactResolver is an optional Clock capability: a clock that is exact
// — it advances only when simulated work is charged to it, never on a
// read — knows its own resolution and reports it directly. The
// simulator's virtual clock returns 1 (one ptime unit).
//
// EstimateResolution short-circuits on this capability. Probing such a
// clock is provably futile: reads charge no work, so no probe loop can
// ever observe a transition, and the loop would burn its entire read
// budget (~8ms of host time per BenchLoop call) only to conclude what
// the capability already states. The returned value is identical to
// what the exhausted probe would report, so the fast path changes
// nothing observable — only how long it takes to observe it.
type ExactResolver interface {
	ExactResolution() ptime.Duration
}

// EstimateResolution measures the clock's effective resolution: the
// smallest positive difference observed between consecutive readings.
// For a quantized clock this converges to the quantum; for a fine clock
// it converges to the read cost. Exact clocks (ExactResolver) are not
// probed at all.
//
// Probing is capped two ways: by a raw read budget (a stuck clock —
// one that never advances — exhausts it and is treated as exact), and
// by the span of clock time already probed (a very coarse quantized
// clock stops as soon as one full quantum has been observed rather
// than waiting out four of them). Both caps bound the harness's
// calibration cost on degenerate clocks without changing the estimate
// for sane ones: the returned value is the minimum positive delta, and
// every delta of a quantized clock equals its quantum.
func EstimateResolution(c Clock) ptime.Duration {
	harness.resolutions.Add(1)
	if er, ok := c.(ExactResolver); ok {
		if r := er.ExactResolution(); r > 0 {
			harness.lastRes.Store(int64(r))
			return r
		}
	}
	// Probe until several tick transitions are seen. A 10ms-quantum
	// clock needs many raw reads before it ticks even once, so the read
	// budget is large; a stuck clock exhausts the budget and is treated
	// as exact.
	const (
		maxReads        = 2_000_000
		wantTransitions = 4
		// maxProbeSpan stops probing once this much clock time has been
		// covered and at least one transition was seen: a quantum
		// coarser than maxProbeSpan/wantTransitions would otherwise pay
		// wantTransitions full quanta of real waiting for no better an
		// estimate.
		maxProbeSpan = 250 * ptime.Millisecond
	)
	best := ptime.Duration(0)
	transitions := 0
	first := c.Now()
	last := first
	for i := 0; i < maxReads && transitions < wantTransitions; i++ {
		now := c.Now()
		if d := now - last; d > 0 {
			if best == 0 || d < best {
				best = d
			}
			transitions++
			last = now
			if now-first >= maxProbeSpan {
				break
			}
		}
	}
	if best == 0 {
		// The clock never advanced during probing (a stuck clock).
		// Treat it as exact.
		best = 1
	}
	harness.lastRes.Store(int64(best))
	return best
}

// Options controls a BenchLoop run. The zero value selects sensible
// defaults mirroring lmbench's hand tuning.
type Options struct {
	// MinSampleTime is the minimum duration one timed batch must span.
	// Default 5ms on a wall clock; the simulator's exact clock allows
	// much smaller values (it is floored at the measured resolution
	// times ResolutionMultiple regardless).
	MinSampleTime ptime.Duration

	// Samples is how many timed batches to run; PerOp comes from the
	// fastest. Default 7.
	Samples int

	// NoWarmup disables the untimed warm-up batch.
	NoWarmup bool

	// MaxN caps the auto-scaled per-batch iteration count; exceeded
	// means the operation is too fast for the clock and ErrClockStuck
	// is returned. Default 1<<32.
	MaxN int64

	// ResolutionMultiple is the minimum number of clock quanta one
	// batch must span. Default 100.
	ResolutionMultiple int64

	// Resolution overrides clock-resolution estimation when positive.
	Resolution ptime.Duration
}

// Normalize validates o and fills in defaults for unset (zero) fields.
// Zero values mean "use the default"; negative values are nonsensical
// and rejected, so a caller cannot silently run with a misconfigured
// harness.
func (o Options) Normalize() (Options, error) {
	switch {
	case o.MinSampleTime < 0:
		return o, fmt.Errorf("timing: negative MinSampleTime %v", o.MinSampleTime)
	case o.Samples < 0:
		return o, fmt.Errorf("timing: negative Samples %d", o.Samples)
	case o.MaxN < 0:
		return o, fmt.Errorf("timing: negative MaxN %d", o.MaxN)
	case o.ResolutionMultiple < 0:
		return o, fmt.Errorf("timing: negative ResolutionMultiple %d", o.ResolutionMultiple)
	case o.Resolution < 0:
		return o, fmt.Errorf("timing: negative Resolution %v", o.Resolution)
	}
	if o.MinSampleTime == 0 {
		o.MinSampleTime = 5 * ptime.Millisecond
	}
	if o.Samples == 0 {
		o.Samples = 7
	}
	if o.MaxN == 0 {
		o.MaxN = 1 << 32
	}
	if o.ResolutionMultiple == 0 {
		o.ResolutionMultiple = 100
	}
	return o, nil
}

// ErrClockStuck reports that the operation could not be scaled to span a
// measurable interval, i.e. the clock is not advancing.
var ErrClockStuck = errors.New("timing: clock did not advance; cannot calibrate")

// Measurement is the result of one BenchLoop run.
type Measurement struct {
	// PerOp is the fastest observed per-operation time.
	PerOp ptime.Duration
	// N is the per-batch iteration count used for the timed samples.
	N int64
	// Samples holds the total elapsed time of each timed batch.
	Samples []ptime.Duration
}

// PerOpNS returns the per-operation time in nanoseconds.
func (m Measurement) PerOpNS() float64 { return m.PerOp.Nanoseconds() }

// PerOpUS returns the per-operation time in microseconds.
func (m Measurement) PerOpUS() float64 { return m.PerOp.Microseconds() }

// String summarizes the measurement.
func (m Measurement) String() string {
	return fmt.Sprintf("%v/op (N=%d, %d samples)", m.PerOp, m.N, len(m.Samples))
}

// BenchLoop measures the per-operation cost of op. The op callback must
// execute its operation n times; it is the moral equivalent of the
// hand-unrolled timing loops in lmbench's C sources. BenchLoop first
// auto-scales n so a batch spans both MinSampleTime and enough clock
// quanta, then takes Options.Samples timed batches.
func BenchLoop(c Clock, opts Options, op func(n int64) error) (Measurement, error) {
	return BenchLoopCtx(context.Background(), c, opts, op)
}

// BenchLoopCtx is BenchLoop with cancellation: the context is checked
// between calibration steps, before the warm-up batch, and between
// timed batches, so a cancelled or deadlined run stops at the next
// batch boundary rather than completing the full sample schedule —
// including a cancellation that lands mid-auto-scaling, which would
// otherwise still pay the (possibly huge) warm-up batch.
func BenchLoopCtx(ctx context.Context, c Clock, opts Options, op func(n int64) error) (Measurement, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Measurement{}, err
	}
	probe := ProbeFrom(ctx)
	res := opts.Resolution
	if res <= 0 {
		res = EstimateResolution(c)
	}
	target := opts.MinSampleTime
	if floor := res.Mul(opts.ResolutionMultiple); floor > target {
		target = floor
	}

	// Calibrate the batch size.
	n := int64(1)
	for {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		elapsed, err := timeBatch(c, op, n)
		if err != nil {
			return Measurement{}, err
		}
		harness.calibrations.Add(1)
		if probe != nil {
			probe.Sample(elapsed, n, false)
		}
		if elapsed >= target {
			break
		}
		var next int64
		if elapsed <= 0 {
			next = n * 16
		} else {
			// Scale with 20% headroom; at least double to guarantee
			// progress against a noisy clock.
			next = int64(float64(n) * float64(target) / float64(elapsed) * 1.2)
			if next < n*2 {
				next = n * 2
			}
		}
		if next > opts.MaxN {
			return Measurement{}, ErrClockStuck
		}
		n = next
	}
	if probe != nil {
		probe.Calibrated(n, res)
	}

	if !opts.NoWarmup {
		// A cancellation that arrived during the auto-scaling phase must
		// not buy one more full batch: check before warming up.
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		if err := op(n); err != nil {
			return Measurement{}, err
		}
	}

	samples := make([]ptime.Duration, 0, opts.Samples)
	best := ptime.Duration(0)
	for i := 0; i < opts.Samples; i++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		elapsed, err := timeBatch(c, op, n)
		if err != nil {
			return Measurement{}, err
		}
		harness.samples.Add(1)
		if probe != nil {
			probe.Sample(elapsed, n, true)
		}
		samples = append(samples, elapsed)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	harness.benchLoops.Add(1)
	m := Measurement{PerOp: best.DivN(n), N: n, Samples: samples}
	if rec := RecorderFrom(ctx); rec != nil {
		rec.Record(m)
	}
	return m, nil
}

func timeBatch(c Clock, op func(n int64) error, n int64) (ptime.Duration, error) {
	start := c.Now()
	if err := op(n); err != nil {
		return 0, err
	}
	return c.Now() - start, nil
}

// Once times a single invocation of op. It is used for operations that
// cannot meaningfully be batched (e.g. creating 1000 files is already a
// batch of its own).
func Once(c Clock, op func() error) (ptime.Duration, error) {
	start := c.Now()
	if err := op(); err != nil {
		return 0, err
	}
	return c.Now() - start, nil
}

// MinOnce runs op `times` times through Once and returns the fastest
// result, matching lmbench's best-of-N policy for unbatchable
// operations (e.g. TCP connection establishment uses best of 20).
func MinOnce(c Clock, times int, op func() error) (ptime.Duration, error) {
	if times <= 0 {
		times = 1
	}
	best := ptime.Duration(0)
	for i := 0; i < times; i++ {
		d, err := Once(c, op)
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// MBPerSec converts a byte count moved in elapsed time to the paper's
// bandwidth unit. lmbench reports megabytes as 2^20 bytes.
func MBPerSec(bytes int64, elapsed ptime.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / elapsed.Seconds()
}
