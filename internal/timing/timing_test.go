package timing

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ptime"
)

// opClock is a manual clock advanced explicitly by test operations; it
// behaves exactly like the simulator's virtual clock.
type opClock struct {
	now ptime.Duration
}

func (c *opClock) Now() ptime.Duration                { return c.now }
func (c *opClock) advance(d ptime.Duration)           { c.now += d }
func (c *opClock) chargeOp(d ptime.Duration, n int64) { c.now += d.Mul(n) }

func TestBenchLoopExactClock(t *testing.T) {
	clk := &opClock{}
	perOp := 250 * ptime.Nanosecond
	m, err := BenchLoop(clk, Options{MinSampleTime: ptime.Microsecond, Samples: 3}, func(n int64) error {
		clk.chargeOp(perOp, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.PerOp != perOp {
		t.Errorf("PerOp = %v, want %v", m.PerOp, perOp)
	}
	if len(m.Samples) != 3 {
		t.Errorf("Samples = %d, want 3", len(m.Samples))
	}
	if m.N < 1 {
		t.Errorf("N = %d, want >= 1", m.N)
	}
}

func TestBenchLoopTakesMinimum(t *testing.T) {
	clk := &opClock{}
	calls := 0
	// Alternate between a slow and a fast per-op cost; the harness must
	// report the fast one (lmbench's min-of-N policy).
	m, err := BenchLoop(clk, Options{MinSampleTime: ptime.Microsecond, Samples: 6, NoWarmup: true}, func(n int64) error {
		calls++
		per := 100 * ptime.Nanosecond
		if calls%2 == 0 {
			per = 130 * ptime.Nanosecond
		}
		clk.chargeOp(per, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.PerOp != 100*ptime.Nanosecond {
		t.Errorf("PerOp = %v, want 100ns", m.PerOp)
	}
}

func TestBenchLoopScalesN(t *testing.T) {
	clk := &opClock{}
	perOp := 10 * ptime.Nanosecond
	m, err := BenchLoop(clk, Options{MinSampleTime: ptime.Millisecond, Samples: 2}, func(n int64) error {
		clk.chargeOp(perOp, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1ms / 10ns = 100000 ops minimum per batch.
	if m.N < 100000 {
		t.Errorf("N = %d, want >= 100000", m.N)
	}
	if m.PerOp != perOp {
		t.Errorf("PerOp = %v, want %v", m.PerOp, perOp)
	}
}

func TestBenchLoopClockStuck(t *testing.T) {
	clk := &opClock{} // never advances
	_, err := BenchLoop(clk, Options{MaxN: 1 << 10, Resolution: ptime.Nanosecond}, func(n int64) error { return nil })
	if !errors.Is(err, ErrClockStuck) {
		t.Errorf("err = %v, want ErrClockStuck", err)
	}
}

func TestBenchLoopPropagatesOpError(t *testing.T) {
	clk := &opClock{}
	boom := errors.New("boom")
	_, err := BenchLoop(clk, Options{}, func(n int64) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestQuantizedClockCompensation(t *testing.T) {
	// Emulate a coarse 1ms gettimeofday on top of the real clock; the
	// harness must still recover a ~50us operation within a reasonable
	// factor because it scales the batch over many quanta.
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	q := &QuantizedClock{Base: NewWallClock(), Step: ptime.Millisecond}
	m, err := BenchLoop(q, Options{
		MinSampleTime:      10 * ptime.Millisecond,
		Samples:            3,
		ResolutionMultiple: 10,
	}, func(n int64) error {
		time.Sleep(time.Duration(n) * 50 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := m.PerOp.Microseconds()
	if got < 40 || got > 2000 {
		t.Errorf("PerOp = %vus, want ~50-2000us (sleep overhead allowed)", got)
	}
}

func TestEstimateResolutionQuantized(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	q := &QuantizedClock{Base: NewWallClock(), Step: 100 * ptime.Microsecond}
	res := EstimateResolution(q)
	// Resolution must be at least one quantum (it can be a multiple if
	// probing is slow, but never less).
	if res < 100*ptime.Microsecond {
		t.Errorf("resolution = %v, want >= 100us", res)
	}
}

func TestEstimateResolutionStuckClock(t *testing.T) {
	res := EstimateResolution(&opClock{})
	if res != 1 {
		t.Errorf("stuck-clock resolution = %v, want 1ps (exact)", res)
	}
}

func TestOnceAndMinOnce(t *testing.T) {
	clk := &opClock{}
	d, err := Once(clk, func() error {
		clk.advance(42 * ptime.Microsecond)
		return nil
	})
	if err != nil || d != 42*ptime.Microsecond {
		t.Errorf("Once = %v, %v", d, err)
	}

	costs := []ptime.Duration{90, 40, 70}
	i := 0
	best, err := MinOnce(clk, 3, func() error {
		clk.advance(costs[i] * ptime.Microsecond)
		i++
		return nil
	})
	if err != nil || best != 40*ptime.Microsecond {
		t.Errorf("MinOnce = %v, %v; want 40us", best, err)
	}

	boom := errors.New("boom")
	if _, err := MinOnce(clk, 2, func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("MinOnce error = %v, want boom", err)
	}
	// times <= 0 is clamped to 1.
	n := 0
	if _, err := MinOnce(clk, 0, func() error { n++; clk.advance(1); return nil }); err != nil || n != 1 {
		t.Errorf("MinOnce(0) ran %d times, err %v", n, err)
	}
}

func TestMBPerSec(t *testing.T) {
	// 8 MiB in 0.1s = 80 MB/s in the paper's 2^20 unit.
	got := MBPerSec(8<<20, 100*ptime.Millisecond)
	if got != 80 {
		t.Errorf("MBPerSec = %v, want 80", got)
	}
	if MBPerSec(1, 0) != 0 {
		t.Error("MBPerSec with zero elapsed should be 0")
	}
}

func TestMeasurementAccessors(t *testing.T) {
	m := Measurement{PerOp: 1500 * ptime.Nanosecond, N: 10, Samples: []ptime.Duration{1, 2}}
	if m.PerOpNS() != 1500 {
		t.Errorf("PerOpNS = %v", m.PerOpNS())
	}
	if m.PerOpUS() != 1.5 {
		t.Errorf("PerOpUS = %v", m.PerOpUS())
	}
	if m.String() == "" {
		t.Error("String is empty")
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestQuantizedZeroStepPassthrough(t *testing.T) {
	base := &opClock{now: 12345}
	q := &QuantizedClock{Base: base}
	if q.Now() != 12345 {
		t.Errorf("zero-step quantized clock should pass through")
	}
}

func TestBenchLoopRecordsIntoRecorder(t *testing.T) {
	clk := &opClock{}
	rec := &Recorder{}
	ctx := WithRecorder(context.Background(), rec)
	m, err := BenchLoopCtx(ctx, clk, Options{MinSampleTime: ptime.Microsecond, Samples: 4}, func(n int64) error {
		clk.chargeOp(200*ptime.Nanosecond, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := rec.Measurements()
	if len(ms) != 1 {
		t.Fatalf("recorder holds %d measurements, want 1", len(ms))
	}
	if ms[0].PerOp != m.PerOp || len(ms[0].Samples) != 4 {
		t.Errorf("recorded %+v, want the returned measurement %+v", ms[0], m)
	}
	rec.Reset()
	if len(rec.Measurements()) != 0 {
		t.Error("Reset did not clear the recorder")
	}
	// Without a recorder on the context nothing is recorded.
	if RecorderFrom(context.Background()) != nil {
		t.Error("RecorderFrom on a bare context should be nil")
	}
}
