// Package unitcache is the content-addressed work-unit cache behind
// incremental evaluation: warm runs restore each (machine × experiment
// group) unit's database fragment from disk instead of re-executing
// it, so a full catalog sweep whose inputs did not change costs file
// reads, not simulation.
//
// # Keying
//
// A unit's cache key is the SHA-256 of everything its result bytes
// depend on:
//
//   - the machine profile fingerprint (machines.Profile.Fingerprint):
//     change one cache latency in a profile and only that machine's
//     units recompute;
//   - the experiment group key (core.ExperimentGroup.Key), the unit of
//     execution, journaling and replay;
//   - the normalized-options fingerprint (store.Fingerprint), with
//     SweepShards neutralized first — sharding a sweep is proven
//     byte-identical at any shard count, so it must not split the key
//     space. SweepMode is deliberately NOT neutralized: adaptive
//     sweeps produce different bytes (synthetic interpolated points,
//     sweep.* attrs) than exhaustive ones, so the two modes get
//     disjoint key spaces and a warm cache from one mode can never
//     poison a run in the other;
//   - the quality-gate parameters (MaxRSD, QualityRetries): the gate
//     stamps quality.* attrs into accepted entries, so enabling it
//     changes result bytes;
//   - the simulator code version (store.CodeVersion, the vcs.revision
//     stamped into the build): a rebuilt world never serves stale
//     physics.
//
// The group's member-ID list is deliberately NOT part of the key: a
// group's Run function produces the same entries regardless of the
// -only filter, and replay re-derives skip IDs from the live group, so
// `-only figure1` and a full run share the mem_hier unit.
//
// # Trust
//
// Fragments are self-verifying: a header line, the SHA-256 of the
// payload, then the payload (the unit's core.JournalRecord as JSON).
// Loads re-hash and re-validate; any mismatch — torn write, bit rot,
// hand-edited file — is a miss, and the offending file is moved to
// quarantine/ (never deleted, matching store.Scrub policy) before the
// unit recomputes. Writes go through store.WriteFileAtomic, the same
// stage→fsync→rename path store objects use, so a crash mid-store
// leaves no torn fragment.
//
// Machines outside the simulated catalog (the host backend) have no
// profile fingerprint and no determinism; their units bypass the cache
// entirely — not even counted as misses.
package unitcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/store"
)

// fragmentHeader is the first line of every cached fragment; bump the
// version to invalidate every fragment written by older formats.
const fragmentHeader = "# lmbench-go unit-fragment v1"

// Observer sees cache traffic out of band — the unit-cache analogue of
// the fleet's scheduling observer. obs.CacheMetrics implements it
// structurally; nil means unobserved. Implementations must be safe for
// concurrent use: fleet drive loops and parallel machine workers hit
// one cache at once.
type Observer interface {
	// CacheHit reports a fragment served from the cache.
	CacheHit()
	// CacheMiss reports a lookup that found nothing usable (absent,
	// corrupt, or unreadable).
	CacheMiss()
	// CacheStored reports a fragment written, with its encoded size.
	CacheStored(bytes int64)
	// CacheEvicted reports files removed by the size cap.
	CacheEvicted(files int, bytes int64)
}

// noopObserver stands in for a nil Observer.
type noopObserver struct{}

func (noopObserver) CacheHit()               {}
func (noopObserver) CacheMiss()              {}
func (noopObserver) CacheStored(int64)       {}
func (noopObserver) CacheEvicted(int, int64) {}

// Config tunes an opened cache.
type Config struct {
	// ReadOnly serves hits but never writes: no stores, no evictions,
	// no recency touches. CI gates use it so a pull request cannot
	// poison a shared cache.
	ReadOnly bool
	// MaxBytes caps the units directory; when a store pushes the total
	// past it, least-recently-used fragments (by modification time,
	// refreshed on every hit) are evicted until back under. 0 means
	// unbounded.
	MaxBytes int64
	// MaxRSD and QualityRetries mirror the suite's quality gate: the
	// gate stamps quality.* attrs into result entries, so its
	// parameters are key inputs. QualityRetries is canonicalized the
	// way the suite defaults it (2 when the gate is on and the value is
	// zero; both zero when the gate is off).
	MaxRSD         float64
	QualityRetries int
	// Obs sees hits, misses, stores and evictions; nil means
	// unobserved.
	Obs Observer
	// Resolve maps a machine name to its profile for cache-key
	// fingerprinting. Nil defaults to the shipped catalog
	// (machines.Default().ByName), a superset of the compiled
	// built-ins; runs over file-loaded or calibration-candidate
	// profiles install their catalog's resolver here so each distinct
	// profile keys its own units. Names the resolver rejects are
	// uncacheable (e.g. the host backend).
	Resolve func(name string) (machines.Profile, bool)
}

// Stats is a point-in-time summary of one cache's traffic.
type Stats struct {
	// Hits and Misses count lookups of cacheable units; uncacheable
	// machines (host) bypass the cache and count as neither.
	Hits, Misses int64
	// Stored counts fragments written; BytesWritten their total encoded
	// size.
	Stored       int64
	BytesWritten int64
	// Evictions counts fragments removed by the MaxBytes cap.
	Evictions int64
}

// String renders the stats in the greppable one-line form cmd/lmbench
// prints at exit.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d stored=%d evictions=%d bytes=%d",
		s.Hits, s.Misses, s.Stored, s.Evictions, s.BytesWritten)
}

// Cache is a content-addressed unit cache rooted at a directory. It
// implements core.UnitCache and is safe for concurrent use.
type Cache struct {
	dir         string
	cfg         Config
	obs         Observer
	optionsFP   string
	codeVersion string

	// keys memoizes per-machine key prefixes (profile fingerprints are
	// a few KB of JSON; hashing them once per machine, not per unit).
	keysMu sync.Mutex
	keys   map[string]string // machine name -> profile fingerprint ("" = uncacheable)

	// writeMu serializes store+evict so the size accounting the
	// eviction scan reads is never mid-update.
	writeMu sync.Mutex

	hits, misses, stored, evictions, bytesWritten atomic.Int64
}

// Open opens (creating if needed) the unit cache rooted at dir, keyed
// for runs with the given options. The options are normalized and
// fingerprinted once here — every Lookup and Store against this handle
// shares them — so one Cache serves exactly one run configuration.
func Open(dir string, opts core.Options, cfg Config) (*Cache, error) {
	// Sharding a sweep across goroutines is proven byte-identical at
	// any shard count; zero it so every shard setting shares keys.
	opts.SweepShards = 0
	fp, err := store.Fingerprint(opts)
	if err != nil {
		return nil, fmt.Errorf("unitcache: %w", err)
	}
	if cfg.MaxRSD <= 0 {
		cfg.MaxRSD, cfg.QualityRetries = 0, 0
	} else if cfg.QualityRetries == 0 {
		cfg.QualityRetries = 2 // the suite's default budget
	}
	for _, d := range []string{dir, filepath.Join(dir, "units")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("unitcache: %w", err)
		}
	}
	c := &Cache{
		dir: dir, cfg: cfg, obs: cfg.Obs,
		optionsFP:   fp,
		codeVersion: store.CodeVersion(),
		keys:        map[string]string{},
	}
	if c.obs == nil {
		c.obs = noopObserver{}
	}
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the cache's traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Stored: c.stored.Load(), Evictions: c.evictions.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// KeyFor derives the cache key for one work unit from its raw key
// inputs. Exported so invalidation tests can assert exactly which
// input changes move the key.
func KeyFor(profileFP, groupKey, optionsFP, codeVersion string, maxRSD float64, qualityRetries int) string {
	h := sha256.New()
	fmt.Fprintf(h, "lmbench-unit/v1\n")
	fmt.Fprintf(h, "profile %s\n", profileFP)
	fmt.Fprintf(h, "group %s\n", groupKey)
	fmt.Fprintf(h, "options %s\n", optionsFP)
	fmt.Fprintf(h, "version %s\n", codeVersion)
	fmt.Fprintf(h, "quality %g %d\n", maxRSD, qualityRetries)
	return hex.EncodeToString(h.Sum(nil))
}

// defaultResolve resolves machine names against the shipped catalog
// (compiled built-ins plus embedded data files).
func defaultResolve(name string) (machines.Profile, bool) {
	return machines.Default().ByName(name)
}

// keyFor resolves the cache key for (machine, groupKey); ok=false
// means the unit is uncacheable (the machine is not a catalog profile,
// e.g. the host backend).
func (c *Cache) keyFor(machine, groupKey string) (string, bool) {
	resolve := c.cfg.Resolve
	if resolve == nil {
		resolve = defaultResolve
	}
	c.keysMu.Lock()
	fp, seen := c.keys[machine]
	if !seen {
		if p, ok := resolve(machine); ok {
			f, err := p.Fingerprint()
			if err == nil {
				fp = f
			}
		}
		c.keys[machine] = fp
	}
	c.keysMu.Unlock()
	if fp == "" {
		return "", false
	}
	return KeyFor(fp, groupKey, c.optionsFP, c.codeVersion, c.cfg.MaxRSD, c.cfg.QualityRetries), true
}

func (c *Cache) unitPath(key string) string {
	return filepath.Join(c.dir, "units", key)
}

// Lookup implements core.UnitCache: it returns the cached record for
// one (machine, group-key) unit, or ok=false when the unit must
// execute. A fragment that fails verification is quarantined and
// reported as a miss; lookups never fail the run.
func (c *Cache) Lookup(machine, groupKey string) (core.JournalRecord, bool) {
	key, cacheable := c.keyFor(machine, groupKey)
	if !cacheable {
		return core.JournalRecord{}, false
	}
	path := c.unitPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		c.obs.CacheMiss()
		return core.JournalRecord{}, false
	}
	rec, err := decodeFragment(data)
	if err != nil || rec.Machine != machine || rec.Key != groupKey {
		// Never trust, never delete: move the bad fragment aside for
		// post-mortem and recompute the unit.
		c.quarantine(path, key)
		c.misses.Add(1)
		c.obs.CacheMiss()
		return core.JournalRecord{}, false
	}
	if !c.cfg.ReadOnly {
		// Refresh recency so the LRU eviction scan sees hot fragments
		// as young. Best effort — a failed touch costs eviction
		// accuracy, not correctness.
		now := time.Now()
		_ = os.Chtimes(path, now, now)
	}
	c.hits.Add(1)
	c.obs.CacheHit()
	return rec, true
}

// Store implements core.UnitCache: it persists one freshly computed
// unit record. Read-only caches and uncacheable machines store
// nothing; a write failure is returned (and fails the run) because a
// cache that silently drops writes would masquerade as forever-cold.
func (c *Cache) Store(rec core.JournalRecord) error {
	if c.cfg.ReadOnly {
		return nil
	}
	if rec.Machine == "" || rec.Key == "" {
		return errors.New("unitcache: record needs machine and key")
	}
	key, cacheable := c.keyFor(rec.Machine, rec.Key)
	if !cacheable {
		return nil
	}
	data, err := encodeFragment(rec)
	if err != nil {
		return fmt.Errorf("unitcache: encode %s/%s: %w", rec.Machine, rec.Key, err)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := store.WriteFileAtomic(c.unitPath(key), data); err != nil {
		return fmt.Errorf("unitcache: store %s/%s: %w", rec.Machine, rec.Key, err)
	}
	c.stored.Add(1)
	c.bytesWritten.Add(int64(len(data)))
	c.obs.CacheStored(int64(len(data)))
	return c.evictLocked(key)
}

// evictLocked enforces MaxBytes after a store, removing fragments
// oldest-modification-first (hits refresh mtimes, making this LRU)
// until the units directory fits. The fragment just written is exempt
// — a cache too small for one unit still serves that unit this run.
// Callers hold writeMu.
func (c *Cache) evictLocked(keep string) error {
	if c.cfg.MaxBytes <= 0 {
		return nil
	}
	dir := filepath.Join(c.dir, "units")
	des, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("unitcache: evict scan: %w", err)
	}
	type frag struct {
		name  string
		size  int64
		mtime time.Time
	}
	var frags []frag
	var total int64
	for _, de := range des {
		if !de.Type().IsRegular() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with another process's eviction
		}
		frags = append(frags, frag{de.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= c.cfg.MaxBytes {
		return nil
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].mtime.Before(frags[j].mtime) })
	evicted, freed := 0, int64(0)
	for _, f := range frags {
		if total <= c.cfg.MaxBytes {
			break
		}
		if f.name == keep {
			continue
		}
		if err := os.Remove(filepath.Join(dir, f.name)); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return fmt.Errorf("unitcache: evict %s: %w", f.name, err)
		}
		total -= f.size
		freed += f.size
		evicted++
	}
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
		c.obs.CacheEvicted(evicted, freed)
	}
	return nil
}

// quarantine moves a failed fragment into quarantine/, mirroring
// store.Scrub: numeric suffixes avoid clobbering earlier evidence, and
// nothing is ever deleted. Best effort — quarantine trouble must not
// fail a lookup.
func (c *Cache) quarantine(path, name string) {
	qdir := filepath.Join(c.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	dst := filepath.Join(qdir, name)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, os.ErrNotExist) {
			break
		} else if err != nil {
			return
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
	}
	_ = os.Rename(path, dst)
}

// encodeFragment renders rec in the self-verifying on-disk format:
// header line, payload SHA-256, payload JSON.
func encodeFragment(rec core.JournalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(fragmentHeader)+1+hex.EncodedLen(len(sum))+1+len(payload)+1)
	out = append(out, fragmentHeader...)
	out = append(out, '\n')
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, '\n')
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

// decodeFragment parses and verifies one on-disk fragment. Any
// structural problem — wrong header, bad digest line, hash mismatch,
// unparseable payload — is an error; callers treat every error as a
// miss. It never panics on arbitrary input (fuzzed).
func decodeFragment(data []byte) (core.JournalRecord, error) {
	var rec core.JournalRecord
	rest, ok := cutLine(data, fragmentHeader)
	if !ok {
		return rec, errors.New("unitcache: bad fragment header")
	}
	digest, payload, ok := splitLine(rest)
	if !ok || len(digest) != hex.EncodedLen(sha256.Size) {
		return rec, errors.New("unitcache: bad fragment digest line")
	}
	want, err := hex.DecodeString(string(digest))
	if err != nil {
		return rec, errors.New("unitcache: bad fragment digest line")
	}
	// The payload is everything after the digest line, minus the
	// trailing newline encodeFragment appends.
	if n := len(payload); n == 0 || payload[n-1] != '\n' {
		return rec, errors.New("unitcache: truncated fragment payload")
	}
	payload = payload[:len(payload)-1]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(want) {
		return rec, errors.New("unitcache: fragment hash mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("unitcache: fragment payload: %w", err)
	}
	if rec.Machine == "" || rec.Key == "" {
		return core.JournalRecord{}, errors.New("unitcache: fragment missing identity")
	}
	return rec, nil
}

// cutLine strips one exact line (and its newline) off the front.
func cutLine(data []byte, line string) (rest []byte, ok bool) {
	if len(data) < len(line)+1 || string(data[:len(line)]) != line || data[len(line)] != '\n' {
		return nil, false
	}
	return data[len(line)+1:], true
}

// splitLine splits at the first newline, excluding it from either
// half.
func splitLine(data []byte) (line, rest []byte, ok bool) {
	for i, b := range data {
		if b == '\n' {
			return data[:i], data[i+1:], true
		}
	}
	return nil, nil, false
}
