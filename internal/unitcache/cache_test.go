package unitcache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/results"
)

// simName returns the i-th catalog machine name; the cache only serves
// catalog profiles, so tests key their records by real names.
func simName(t *testing.T, i int) string {
	t.Helper()
	names := machines.Names()
	if i >= len(names) {
		t.Fatalf("catalog has %d machines, need index %d", len(names), i)
	}
	return names[i]
}

func testRecord(machine, key string) core.JournalRecord {
	return core.JournalRecord{
		Machine: machine, Key: key,
		Entries: []results.Entry{
			{Benchmark: "bw_mem.read", Machine: machine, Unit: "MB/s", Scalar: 33.4},
			{Benchmark: "lat_mem_rd", Machine: machine, Unit: "ns",
				Series: []results.Point{{X: 1, Y: 2.5}, {X: 2, Y: 7.25}},
				Attrs:  map[string]string{"stride": "128"}},
		},
	}
}

func mustOpen(t *testing.T, dir string, opts core.Options, cfg Config) *Cache {
	t.Helper()
	c, err := Open(dir, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := mustOpen(t, t.TempDir(), core.Options{}, Config{})
	m := simName(t, 0)
	rec := testRecord(m, "table2")

	if _, ok := c.Lookup(m, "table2"); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Store(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup(m, "table2")
	if !ok {
		t.Fatal("miss after store")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip mutated the record:\n got %+v\nwant %+v", got, rec)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stored != 1 || s.BytesWritten == 0 {
		t.Errorf("stats = %s, want hits=1 misses=1 stored=1 and bytes>0", s)
	}
}

func TestSkipRecordRoundTrip(t *testing.T) {
	c := mustOpen(t, t.TempDir(), core.Options{}, Config{})
	m := simName(t, 0)
	rec := core.JournalRecord{Machine: m, Key: "table4", Skipped: true, Err: "no remote network"}
	if err := c.Store(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup(m, "table4")
	if !ok {
		t.Fatal("miss after storing a skip record")
	}
	if !got.Skipped || got.Err != rec.Err {
		t.Errorf("got %+v, want the skip record back", got)
	}
}

// TestUncacheableMachine proves machines outside the simulated catalog
// (the host backend) bypass the cache: no fragments, no counted
// traffic.
func TestUncacheableMachine(t *testing.T) {
	c := mustOpen(t, t.TempDir(), core.Options{}, Config{})
	if err := c.Store(core.JournalRecord{Machine: "host", Key: "table2"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("host", "table2"); ok {
		t.Fatal("hit for an uncacheable machine")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Stored != 0 {
		t.Errorf("uncacheable traffic was counted: %s", s)
	}
}

// TestKeyInvalidation pins the tentpole's invalidation contract: each
// key input — profile, group, options, code version, quality gate —
// moves the key on its own; the member-ID list and SweepShards do not
// exist in the key at all.
func TestKeyInvalidation(t *testing.T) {
	p0, _ := machines.ByName(simName(t, 0))
	p1, _ := machines.ByName(simName(t, 1))
	fp0, err := p0.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := p1.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp0 == fp1 {
		t.Fatal("distinct profiles share a fingerprint")
	}
	base := KeyFor(fp0, "table2", `{"MemSize":8388608}`, "abc123", 0, 0)
	for name, other := range map[string]string{
		"profile":      KeyFor(fp1, "table2", `{"MemSize":8388608}`, "abc123", 0, 0),
		"group":        KeyFor(fp0, "table7", `{"MemSize":8388608}`, "abc123", 0, 0),
		"options":      KeyFor(fp0, "table2", `{"MemSize":4194304}`, "abc123", 0, 0),
		"code version": KeyFor(fp0, "table2", `{"MemSize":8388608}`, "def456", 0, 0),
		"quality gate": KeyFor(fp0, "table2", `{"MemSize":8388608}`, "abc123", 0.05, 2),
	} {
		if other == base {
			t.Errorf("changing the %s did not change the key", name)
		}
	}
	// A renamed profile must not alias: Name is part of the fingerprint.
	renamed := p0
	renamed.Name = "renamed"
	rfp, err := renamed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if rfp == fp0 {
		t.Error("renaming a profile did not change its fingerprint")
	}
}

// TestOptionsChangeMisses proves the end-to-end form of options
// invalidation: a cache opened with different workload options misses
// on units stored under the old ones.
func TestOptionsChangeMisses(t *testing.T) {
	dir := t.TempDir()
	m := simName(t, 0)
	c1 := mustOpen(t, dir, core.Options{}, Config{})
	if err := c1.Store(testRecord(m, "table2")); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir, core.Options{MemSize: 4 << 20}, Config{})
	if _, ok := c2.Lookup(m, "table2"); ok {
		t.Fatal("hit across an options change")
	}
	// The quality gate is a key input even with identical workloads.
	c3 := mustOpen(t, dir, core.Options{}, Config{MaxRSD: 0.05})
	if _, ok := c3.Lookup(m, "table2"); ok {
		t.Fatal("hit across a quality-gate change")
	}
}

// TestSweepShardsNeutralized proves shard count shares keys: sharding
// is byte-identical at any value, so a -shards 4 run warms a -shards 1
// run and vice versa.
func TestSweepShardsNeutralized(t *testing.T) {
	dir := t.TempDir()
	m := simName(t, 0)
	c1 := mustOpen(t, dir, core.Options{SweepShards: 1}, Config{})
	if err := c1.Store(testRecord(m, "mem_hier")); err != nil {
		t.Fatal(err)
	}
	c4 := mustOpen(t, dir, core.Options{SweepShards: 4}, Config{})
	if _, ok := c4.Lookup(m, "mem_hier"); !ok {
		t.Fatal("sweep shard count split the key space")
	}
}

// TestSweepModeSplitsKeys proves the opposite of shard neutrality for
// the sweep mode: adaptive results carry synthetic points and sweep.*
// attrs an exhaustive database never contains, so entries warmed in
// one mode must never serve the other. The mode rides the options
// fingerprint, giving the two modes disjoint key spaces by
// construction — in both directions, at any shard count.
func TestSweepModeSplitsKeys(t *testing.T) {
	dir := t.TempDir()
	m := simName(t, 0)
	ex := mustOpen(t, dir, core.Options{}, Config{})
	if err := ex.Store(testRecord(m, "mem_hier")); err != nil {
		t.Fatal(err)
	}
	ad := mustOpen(t, dir, core.Options{SweepMode: core.SweepAdaptive}, Config{})
	if _, ok := ad.Lookup(m, "mem_hier"); ok {
		t.Fatal("adaptive run hit an exhaustive-mode fragment")
	}
	if err := ad.Store(testRecord(m, "ext_memvar")); err != nil {
		t.Fatal(err)
	}
	ex2 := mustOpen(t, dir, core.Options{}, Config{})
	if _, ok := ex2.Lookup(m, "ext_memvar"); ok {
		t.Fatal("exhaustive run hit an adaptive-mode fragment")
	}
	// Explicit exhaustive and the default empty mode normalize to the
	// same fingerprint, so they share keys.
	exExplicit := mustOpen(t, dir, core.Options{SweepMode: core.SweepExhaustive}, Config{})
	if _, ok := exExplicit.Lookup(m, "mem_hier"); !ok {
		t.Fatal("explicit exhaustive mode split the key space from the default")
	}
	// Shard count still shares keys within the adaptive mode.
	ad4 := mustOpen(t, dir, core.Options{SweepMode: core.SweepAdaptive, SweepShards: 4}, Config{})
	if _, ok := ad4.Lookup(m, "ext_memvar"); !ok {
		t.Fatal("sweep shard count split the adaptive key space")
	}
}

// TestCorruptFragmentQuarantined flips one payload byte and proves the
// lookup misses, the fragment lands in quarantine/ (not deleted), and
// a recompute-and-store round trip heals the cache.
func TestCorruptFragmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, core.Options{}, Config{})
	m := simName(t, 0)
	rec := testRecord(m, "table2")
	if err := c.Store(rec); err != nil {
		t.Fatal(err)
	}
	key, ok := c.keyFor(m, "table2")
	if !ok {
		t.Fatal("catalog machine reported uncacheable")
	}
	path := c.unitPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Lookup(m, "table2"); ok {
		t.Fatal("corrupt fragment served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt fragment still at its unit path")
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(quarantined), err)
	}
	// Recompute: a fresh store must serve again.
	if err := c.Store(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(m, "table2"); !ok {
		t.Fatal("miss after recompute")
	}
}

// TestTruncatedFragmentQuarantined covers the torn-write shape: a
// fragment cut mid-payload must miss and quarantine, and repeated
// corruption must not clobber earlier quarantined evidence.
func TestTruncatedFragmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, core.Options{}, Config{})
	m := simName(t, 0)
	rec := testRecord(m, "table2")
	key, _ := c.keyFor(m, "table2")
	path := c.unitPath(key)
	for i := 0; i < 2; i++ {
		if err := c.Store(rec); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Lookup(m, "table2"); ok {
			t.Fatal("truncated fragment served as a hit")
		}
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(quarantined) != 2 {
		t.Errorf("quarantine holds %d files, want 2 (suffixing must not clobber)", len(quarantined))
	}
}

// TestWrongIdentityQuarantined proves a verified-but-misfiled fragment
// (valid hash, wrong machine/key inside) is rejected: content
// addressing is not trusted to imply identity.
func TestWrongIdentityQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, core.Options{}, Config{})
	m0, m1 := simName(t, 0), simName(t, 1)
	if err := c.Store(testRecord(m0, "table2")); err != nil {
		t.Fatal(err)
	}
	k0, _ := c.keyFor(m0, "table2")
	k1, _ := c.keyFor(m1, "table2")
	data, err := os.ReadFile(c.unitPath(k0))
	if err != nil {
		t.Fatal(err)
	}
	// A byte-for-byte valid fragment under the wrong key.
	if err := os.WriteFile(c.unitPath(k1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(m1, "table2"); ok {
		t.Fatal("fragment with mismatched identity served as a hit")
	}
	if _, err := os.Stat(c.unitPath(k1)); !os.IsNotExist(err) {
		t.Error("misfiled fragment was not quarantined")
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	m := simName(t, 0)
	rw := mustOpen(t, dir, core.Options{}, Config{})
	if err := rw.Store(testRecord(m, "table2")); err != nil {
		t.Fatal(err)
	}
	key, _ := rw.keyFor(m, "table2")
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(rw.unitPath(key), old, old); err != nil {
		t.Fatal(err)
	}

	ro := mustOpen(t, dir, core.Options{}, Config{ReadOnly: true})
	if _, ok := ro.Lookup(m, "table2"); !ok {
		t.Fatal("read-only cache missed an existing fragment")
	}
	if err := ro.Store(testRecord(m, "table7")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.Lookup(m, "table7"); ok {
		t.Fatal("read-only cache persisted a store")
	}
	if s := ro.Stats(); s.Stored != 0 || s.BytesWritten != 0 {
		t.Errorf("read-only cache counted writes: %s", s)
	}
	// Read-only hits must not refresh recency either.
	info, err := os.Stat(rw.unitPath(key))
	if err != nil {
		t.Fatal(err)
	}
	if info.ModTime().After(old.Add(time.Minute)) {
		t.Error("read-only lookup touched the fragment mtime")
	}
}

// TestEvictionLRU caps the cache below three fragments and proves the
// least-recently-used one goes: recency is refreshed by hits, the
// just-written fragment is exempt, and eviction counts surface in
// Stats.
func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	m := simName(t, 0)
	pad := strings.Repeat("x", 512)
	rec := func(key string) core.JournalRecord {
		r := testRecord(m, key)
		r.Entries[1].Attrs["pad"] = pad
		return r
	}
	probe := mustOpen(t, dir, core.Options{}, Config{})
	if err := probe.Store(rec("a")); err != nil {
		t.Fatal(err)
	}
	ka, _ := probe.keyFor(m, "a")
	info, err := os.Stat(probe.unitPath(ka))
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()

	c := mustOpen(t, dir, core.Options{}, Config{MaxBytes: 2*size + size/2})
	if err := c.Store(rec("b")); err != nil {
		t.Fatal(err)
	}
	// Age both, then make "a" recently used again.
	kb, _ := c.keyFor(m, "b")
	for i, k := range []string{ka, kb} {
		old := time.Now().Add(-time.Duration(i+1) * time.Hour)
		if err := os.Chtimes(c.unitPath(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Lookup(m, "a"); !ok {
		t.Fatal("miss on fragment a")
	}
	// Storing "c" exceeds the cap; "b" is now the LRU and must go.
	if err := c.Store(rec("c")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(m, "b"); ok {
		t.Fatal("LRU fragment survived eviction")
	}
	if _, ok := c.Lookup(m, "a"); !ok {
		t.Fatal("recently-used fragment was evicted")
	}
	if _, ok := c.Lookup(m, "c"); !ok {
		t.Fatal("just-written fragment was evicted")
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Errorf("stats show no evictions: %s", s)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines — the
// fleet shape, where drive loops store and parallel machines look up
// at once. Run under -race by `make race`.
func TestConcurrentAccess(t *testing.T) {
	c := mustOpen(t, t.TempDir(), core.Options{}, Config{MaxBytes: 64 << 10})
	names := machines.Names()
	keys := []string{"table2", "table7", "mem_hier", "ctx", "ipc"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := names[(g+i)%len(names)]
				k := keys[(g*7+i)%len(keys)]
				if i%2 == 0 {
					if err := c.Store(testRecord(m, k)); err != nil {
						t.Error(err)
						return
					}
				} else if rec, ok := c.Lookup(m, k); ok {
					if rec.Machine != m || rec.Key != k {
						t.Errorf("lookup(%s,%s) returned %s/%s", m, k, rec.Machine, rec.Key)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFragmentDecodeRejects pins the decoder against the corruption
// shapes the fuzz target explores.
func TestFragmentDecodeRejects(t *testing.T) {
	good, err := encodeFragment(testRecord(simName(t, 0), "table2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeFragment(good); err != nil {
		t.Fatalf("valid fragment rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"header only":     []byte(fragmentHeader + "\n"),
		"bad header":      append([]byte("# not a fragment\n"), good...),
		"short digest":    []byte(fragmentHeader + "\nabcd\n{}\n"),
		"non-hex digest":  []byte(fragmentHeader + "\n" + strings.Repeat("z", 64) + "\n{}\n"),
		"no payload":      []byte(fragmentHeader + "\n" + strings.Repeat("a", 64) + "\n"),
		"hash mismatch":   []byte(fragmentHeader + "\n" + strings.Repeat("a", 64) + "\n{}\n"),
		"truncated":       good[:len(good)-3],
		"missing newline": good[:len(good)-1],
	}
	for name, data := range cases {
		if _, err := decodeFragment(data); err == nil {
			t.Errorf("%s: decode accepted bad input", name)
		}
	}
}
