package unitcache

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/results"
)

// FuzzFragment throws arbitrary bytes at the fragment loader: whatever
// the input — torn writes, bit rot, adversarial hand-edits — decode
// must either return a record that re-encodes to a verifiable fragment
// or an error, and it must never panic. The seed corpus covers the
// valid shape plus each structural corruption the decoder guards.
func FuzzFragment(f *testing.F) {
	valid, err := encodeFragment(core.JournalRecord{
		Machine: "SPARC/sim", Key: "mem_hier",
		Entries: []results.Entry{
			{Benchmark: "lat_mem_rd", Machine: "SPARC/sim", Unit: "ns",
				Series: []results.Point{{X: 4096, Y: 7.5}, {X: 8192, X2: 1, Y: 120}},
				Attrs:  map[string]string{"stride": "128"}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(fragmentHeader + "\n"))
	f.Add([]byte(fragmentHeader + "\n" + strings.Repeat("a", 64) + "\n{}\n"))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("# not a fragment\njunk\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeFragment(data)
		if err != nil {
			return
		}
		// A record the decoder vouched for must survive a re-encode →
		// re-decode round trip: the cache may serve exactly what it
		// would have written.
		enc, err := encodeFragment(rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if _, err := decodeFragment(enc); err != nil {
			t.Fatalf("re-encoded fragment failed to decode: %v", err)
		}
		if rec.Machine == "" || rec.Key == "" {
			t.Fatal("decoder accepted a record without identity")
		}
	})
}
