// Package lmbench is a Go reproduction of "lmbench: Portable Tools for
// Performance Analysis" (McVoy & Staelin, USENIX 1996): a suite of
// micro-benchmarks measuring the latency and bandwidth of the primitive
// operations underlying most applications — data movement among
// processor, caches, memory, network, file system and disk.
//
// The same benchmark code runs against two backends:
//
//   - the host backend, which measures the real machine the program
//     runs on (pipes, loopback TCP/UDP, an ONC-RPC-style layer, file
//     systems, O_DIRECT disk reads, pointer-chase memory latency), and
//   - simulated machines: calibrated models of the paper's Table-1
//     testbed (set-associative cache hierarchies, TLB and DRAM, an OS
//     cost model, a network stack model, metadata-policy file systems
//     and a SCSI disk model), against which every table and figure of
//     the paper's evaluation can be regenerated.
//
// Quick use:
//
//	lmbench.MaybeChild() // first line of main(); see below
//	m, _ := lmbench.NewHostMachine()
//	defer m.Close()
//	rep, err := lmbench.New(lmbench.WithMachine(m)).Run(context.Background())
//	_ = rep.Render(os.Stdout)
//
// New composes a run from options — machines, sinks, a resume
// journal, a fleet of worker processes — and returns a Report; see
// the examples. The positional Run/RunExtended remain as deprecated
// wrappers.
//
// Binaries that run the process-creation benchmarks must call
// MaybeChild first: the "fork & exit" rung re-executes the current
// binary, and MaybeChild makes those children exit immediately. The
// same call turns a re-exec into a fleet worker when a WithFleet run
// spawned it.
package lmbench

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/host"
	"repro/internal/machines"
	"repro/internal/paper"
	"repro/internal/results"
)

// Machine is a benchmark target: the host or a simulated system.
type Machine = core.Machine

// Options bundles harness settings and workload sizes; the zero value
// selects the paper's defaults (8MB regions, 1000 files, ...).
type Options = core.Options

// SweepMode selects how point sweeps cover their grids; see
// SweepExhaustive and SweepAdaptive.
type SweepMode = core.SweepMode

// Sweep coverage modes. Exhaustive measures every grid point and is
// the byte-stable default; adaptive measures a coarse pass plus
// refinement around detected transitions and interpolates plateau
// interiors, marking synthetic points in entry attributes.
const (
	SweepExhaustive = core.SweepExhaustive
	SweepAdaptive   = core.SweepAdaptive
)

// Experiment ties one of the paper's tables or figures to the code
// that regenerates it.
type Experiment = core.Experiment

// DB is the mergeable, serializable results database.
type DB = results.DB

// Suite runs experiments on one machine with per-experiment timeout,
// retries and a structured event stream; see Run for the common case.
type Suite = core.Suite

// Runner schedules suite runs across several machines with a worker
// pool; simulated machines run concurrently, wall-clock machines are
// serialized so measurements stay unperturbed.
type Runner = core.Runner

// Event is one structured record of the run event stream.
type Event = core.Event

// EventSink receives run events; see NewTextSink and NewJSONLSink.
type EventSink = core.EventSink

// Entry is one benchmark result (scalar or series).
type Entry = results.Entry

// ErrUnsupported marks primitives a backend cannot provide; Run skips
// the corresponding experiments.
var ErrUnsupported = core.ErrUnsupported

// MaybeChild must be the first call in main() of any binary using the
// host backend's process-creation benchmarks or fleet execution. It
// turns re-executions of the binary into what they were spawned to be:
// a fork-child of a process benchmark exits immediately; a WithFleet
// worker serves work units on stdin/stdout and then exits. The
// fork-child check runs first — fork children of a fleet worker
// inherit both sentinels and must still exit at once.
func MaybeChild() {
	host.MaybeChild()
	fleet.MaybeWorker()
}

// NewHostMachine builds the backend measuring the real machine. Close
// it when done.
func NewHostMachine() (*host.Machine, error) { return host.New() }

// SimMachineNames lists the compiled-in Table-1 machine profiles. The
// full shipped set — compiled built-ins plus embedded data-file
// profiles — is CatalogMachineNames(nil).
func SimMachineNames() []string { return machines.Names() }

// NewSimMachine builds a simulated machine from the shipped catalog:
// the compiled Table-1 testbed plus the embedded data-file profiles.
func NewSimMachine(name string) (Machine, error) {
	return NewSimMachineIn(nil, name)
}

// UnknownMachineError reports a name with no built-in profile.
type UnknownMachineError struct{ Name string }

func (e *UnknownMachineError) Error() string {
	return "lmbench: unknown simulated machine " + e.Name
}

// Experiments returns the paper's evaluation (Tables 2-17, Figures
// 1-2) in presentation order.
func Experiments() []Experiment { return core.Experiments() }

// Run executes all experiments (or those selected in only) on m and
// merges the entries into db, returning the IDs the backend skipped.
// The context cancels or deadlines the run between measurement
// batches; use context.Background() for an unbounded run.
//
// Deprecated: compose the run with New instead — Run is the fixed
// single-machine arrangement of it and takes no sinks, journal or
// fleet. It remains for compatibility and behaves identically.
func Run(ctx context.Context, m Machine, opts Options, db *DB, only ...string) ([]string, error) {
	return run(ctx, m, opts, db, false, only)
}

// RunExtended is Run plus the §7 future-work experiments (STREAM,
// dirty/write latency, TLB, cache-to-cache); see Extensions.
//
// Deprecated: use New with WithExtended; see Run.
func RunExtended(ctx context.Context, m Machine, opts Options, db *DB, only ...string) ([]string, error) {
	return run(ctx, m, opts, db, true, only)
}

func run(ctx context.Context, m Machine, opts Options, db *DB, extended bool, only []string) ([]string, error) {
	s := &core.Suite{M: m, Opts: opts, Extended: extended}
	if len(only) > 0 {
		s.Only = map[string]bool{}
		for _, id := range only {
			s.Only[id] = true
		}
	}
	return s.Run(ctx, db)
}

// NewTextSink renders run events as human-readable progress lines.
func NewTextSink(w io.Writer) EventSink { return core.NewTextSink(w) }

// NewJSONLSink writes run events as JSON lines, one object per
// lifecycle transition.
func NewJSONLSink(w io.Writer) EventSink { return core.NewJSONLSink(w) }

// NewPrefixedTextSink is NewTextSink with each line prefixed by its
// machine name — the readable choice for multi-machine runs.
func NewPrefixedTextSink(w io.Writer) EventSink { return core.NewPrefixedTextSink(w) }

// Extensions returns the §7 future-work experiments run by
// RunExtended.
func Extensions() []Experiment { return core.Extensions() }

// AutoSize probes m's memory hierarchy and grows base's region sizes
// so the outermost cache cannot satisfy the "memory" benchmarks (§7
// "Automatic sizing").
func AutoSize(ctx context.Context, m Machine, base Options) (Options, error) {
	return core.AutoSize(ctx, m, base)
}

// RenderReport writes every populated table and figure in the paper's
// presentation format.
func RenderReport(w io.Writer, db *DB) error { return paper.RenderAll(w, db) }

// RenderTable writes one table ("table2" ... "table17").
func RenderTable(w io.Writer, id string, db *DB) error { return paper.RenderTable(w, id, db) }
