package lmbench

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ptime"
	"repro/internal/timing"
)

func TestFacadeSimRun(t *testing.T) {
	names := SimMachineNames()
	if len(names) < 10 {
		t.Fatalf("SimMachineNames = %d entries", len(names))
	}
	m, err := NewSimMachine("Linux/i686")
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{}
	opts := Options{
		Timing:  timing.Options{MinSampleTime: 100 * ptime.Microsecond, Samples: 2},
		FSFiles: 50,
	}
	skipped, err := Run(context.Background(), m, opts, db, "table7", "table16")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	if _, ok := db.Scalar("lat_syscall", "Linux/i686"); !ok {
		t.Error("missing lat_syscall")
	}

	var buf bytes.Buffer
	if err := RenderReport(&buf, db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 7") {
		t.Errorf("report missing Table 7:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderTable(&buf, "table16", db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 16") {
		t.Error("RenderTable failed")
	}
}

func TestFacadeUnknownMachine(t *testing.T) {
	_, err := NewSimMachine("PDP-11")
	var ue *UnknownMachineError
	if !errors.As(err, &ue) || ue.Name != "PDP-11" {
		t.Errorf("err = %v, want UnknownMachineError", err)
	}
	if ue.Error() == "" {
		t.Error("empty error text")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 18 {
		t.Errorf("Experiments = %d, want 18", len(Experiments()))
	}
}

func TestFacadeExtendedAndAutoSize(t *testing.T) {
	m, err := NewSimMachine("SGI Challenge")
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{}
	opts := Options{
		Timing:  timing.Options{MinSampleTime: 100 * ptime.Microsecond, Samples: 2},
		MemSize: 1 << 20,
	}
	skipped, err := RunExtended(context.Background(), m, opts, db, "ext_stream")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	if _, ok := db.Scalar("stream.triad", "SGI Challenge"); !ok {
		t.Error("missing stream.triad")
	}
	if len(Extensions()) < 5 {
		t.Errorf("Extensions = %d", len(Extensions()))
	}

	sized, err := AutoSize(context.Background(), m, Options{MaxChaseSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if sized.MemSize < 16<<20 {
		t.Errorf("AutoSize = %d, want >= 16M for the 4M board cache", sized.MemSize)
	}
}
