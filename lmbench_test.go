package lmbench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ptime"
	"repro/internal/timing"
)

func TestFacadeSimRun(t *testing.T) {
	names := SimMachineNames()
	if len(names) < 10 {
		t.Fatalf("SimMachineNames = %d entries", len(names))
	}
	m, err := NewSimMachine("Linux/i686")
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{}
	opts := Options{
		Timing:  timing.Options{MinSampleTime: 100 * ptime.Microsecond, Samples: 2},
		FSFiles: 50,
	}
	skipped, err := Run(context.Background(), m, opts, db, "table7", "table16")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	if _, ok := db.Scalar("lat_syscall", "Linux/i686"); !ok {
		t.Error("missing lat_syscall")
	}

	var buf bytes.Buffer
	if err := RenderReport(&buf, db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 7") {
		t.Errorf("report missing Table 7:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderTable(&buf, "table16", db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 16") {
		t.Error("RenderTable failed")
	}
}

func TestFacadeUnknownMachine(t *testing.T) {
	_, err := NewSimMachine("PDP-11")
	var ue *UnknownMachineError
	if !errors.As(err, &ue) || ue.Name != "PDP-11" {
		t.Errorf("err = %v, want UnknownMachineError", err)
	}
	if ue.Error() == "" {
		t.Error("empty error text")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 18 {
		t.Errorf("Experiments = %d, want 18", len(Experiments()))
	}
}

func TestFacadeExtendedAndAutoSize(t *testing.T) {
	m, err := NewSimMachine("SGI Challenge")
	if err != nil {
		t.Fatal(err)
	}
	db := &DB{}
	opts := Options{
		Timing:  timing.Options{MinSampleTime: 100 * ptime.Microsecond, Samples: 2},
		MemSize: 1 << 20,
	}
	skipped, err := RunExtended(context.Background(), m, opts, db, "ext_stream")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	if _, ok := db.Scalar("stream.triad", "SGI Challenge"); !ok {
		t.Error("missing stream.triad")
	}
	if len(Extensions()) < 5 {
		t.Errorf("Extensions = %d", len(Extensions()))
	}

	sized, err := AutoSize(context.Background(), m, Options{MaxChaseSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if sized.MemSize < 16<<20 {
		t.Errorf("AutoSize = %d, want >= 16M for the 4M board cache", sized.MemSize)
	}
}

// TestWithSweepModeOrderIndependent pins the builder contract for
// WithSweepMode: it composes with WithOptions in either order, marks
// the produced entries, and moves the run to a distinct fingerprint
// (and therefore RunID / unit-cache key space) from an exhaustive run
// of the same options.
func TestWithSweepModeOrderIndependent(t *testing.T) {
	run := func(options ...Option) *Report {
		t.Helper()
		m, err := NewSimMachine("Linux/i686")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := New(append(options,
			WithMachine(m), WithOnly("figure1", "table6"))...).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	before := run(WithSweepMode(SweepAdaptive), WithOptions(exampleOpts()))
	after := run(WithOptions(exampleOpts()), WithSweepMode(SweepAdaptive))
	exhaustive := run(WithOptions(exampleOpts()))

	var a, b bytes.Buffer
	_ = before.DB.Encode(&a)
	_ = after.DB.Encode(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WithSweepMode before and after WithOptions produced different databases")
	}
	marked := false
	for _, e := range before.DB.Entries() {
		if e.Attrs["sweep.mode"] == string(SweepAdaptive) {
			marked = true
		}
	}
	if !marked {
		t.Error("adaptive run produced no sweep.mode-marked entries")
	}
	for _, e := range exhaustive.DB.Entries() {
		if e.Attrs["sweep.mode"] != "" {
			t.Errorf("exhaustive entry %s carries sweep.mode=%q", e.Benchmark, e.Attrs["sweep.mode"])
		}
	}
	if before.RunID == exhaustive.RunID {
		t.Error("adaptive and exhaustive runs share a RunID — the mode is missing from the fingerprint")
	}
	if before.RunID != after.RunID {
		t.Error("option ordering changed the RunID")
	}
}

// exampleOpts shrinks the workloads so the examples run in a moment.
func exampleOpts() Options {
	return Options{
		Timing:       timing.Options{MinSampleTime: 100 * ptime.Microsecond, Samples: 2},
		MemSize:      1 << 20,
		FileSize:     1 << 20,
		MaxChaseSize: 1 << 20,
		FSFiles:      50,
		CtxProcs:     []int{2, 4},
		CtxSizes:     []int64{0, 4 << 10},
	}
}

// ExampleNew is the builder quickstart: compose a run from options,
// execute it, and render the report. Swap NewSimMachine for
// NewHostMachine to measure the real machine.
func ExampleNew() {
	m, err := NewSimMachine("Linux/i686")
	if err != nil {
		panic(err)
	}
	rep, err := New(
		WithMachine(m),
		WithOptions(exampleOpts()),
		WithOnly("table7"),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("entries:", len(rep.DB.Entries()) > 0)
	fmt.Println("skipped:", len(rep.Skipped["Linux/i686"]))
	// rep.Render(os.Stdout) would print the paper-style tables.
	// Output:
	// entries: true
	// skipped: 0
}

// ExampleNew_fleet executes the run across worker processes —
// re-executions of this binary, which is why main (here, TestMain)
// calls MaybeChild first — and shows the result is byte-identical to
// the serial run.
func ExampleNew_fleet() {
	machines := func() []Option {
		var opts []Option
		for _, n := range []string{"Linux/i686", "Linux/Alpha"} {
			m, err := NewSimMachine(n)
			if err != nil {
				panic(err)
			}
			opts = append(opts, WithMachine(m))
		}
		return opts
	}
	base := []Option{WithOptions(exampleOpts()), WithOnly("table2", "table7")}

	serial, err := New(append(machines(), base...)...).Run(context.Background())
	if err != nil {
		panic(err)
	}
	fleet, err := New(append(machines(), append(base, WithFleet(2))...)...).Run(context.Background())
	if err != nil {
		panic(err)
	}

	var a, b bytes.Buffer
	_ = serial.DB.Encode(&a)
	_ = fleet.DB.Encode(&b)
	fmt.Println("fleet == serial:", bytes.Equal(a.Bytes(), b.Bytes()))
	// Output:
	// fleet == serial: true
}

// ExampleNew_journal makes a run crash-safe: every completed
// experiment is journaled, and re-running with the same path replays
// the journal instead of re-executing — here the second run rebuilds
// the identical database entirely from the journal.
func ExampleNew_journal() {
	dir, err := os.MkdirTemp("", "lmbench-example")
	if err != nil {
		panic(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	journal := filepath.Join(dir, "run.jnl")

	run := func() *Report {
		m, err := NewSimMachine("IBM PowerPC")
		if err != nil {
			panic(err)
		}
		rep, err := New(
			WithMachine(m),
			WithOptions(exampleOpts()),
			WithOnly("table7", "table16"),
			WithJournal(journal),
		).Run(context.Background())
		if err != nil {
			panic(err)
		}
		return rep
	}
	first, resumed := run(), run()

	var a, b bytes.Buffer
	_ = first.DB.Encode(&a)
	_ = resumed.DB.Encode(&b)
	fmt.Println("resumed identical:", bytes.Equal(a.Bytes(), b.Bytes()))
	// Output:
	// resumed identical: true
}
