package lmbench

import (
	"io"

	"repro/internal/core"
	"repro/internal/obs"
)

// This file re-exports the observability layer so binaries can wire
// metrics, progress, traces and the live server from the facade alone.
// Everything here is out-of-band: derived from the event stream and
// harness probe callbacks, never touching a timed interval or the
// results database.

// Registry is a process-local metric registry with a Prometheus text
// exposition; see NewRegistry.
type Registry = obs.Registry

// MetricsSink aggregates run events into lmbench_* metric families.
type MetricsSink = obs.MetricsSink

// FleetMetrics aggregates fleet scheduling activity into
// lmbench_fleet_* metric families; it satisfies the coordinator's
// Observer.
type FleetMetrics = obs.FleetMetrics

// CacheMetrics aggregates unit-cache traffic into lmbench_unit_cache_*
// metric families; it satisfies CacheObserver.
type CacheMetrics = obs.CacheMetrics

// Progress tracks per-machine completion and ETA for the live
// /progress endpoint.
type Progress = obs.Progress

// TraceSink turns the event stream into a span trace, one JSON line
// per completed attempt; Close emits the root span.
type TraceSink = obs.TraceSink

// Server exposes /metrics, /progress and /healthz over HTTP.
type Server = obs.Server

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewMetricsSink registers the suite's metric families in reg and
// returns the event sink feeding them.
func NewMetricsSink(reg *Registry) *MetricsSink { return obs.NewMetricsSink(reg) }

// NewFleetMetrics registers the fleet metric families in reg and
// returns the coordinator observer feeding them.
func NewFleetMetrics(reg *Registry) *FleetMetrics { return obs.NewFleetMetrics(reg) }

// NewCacheMetrics registers the unit-cache metric families in reg and
// returns the cache observer feeding them; pass it to
// WithUnitCacheObserver.
func NewCacheMetrics(reg *Registry) *CacheMetrics { return obs.NewCacheMetrics(reg) }

// NewProgress returns a progress tracker; feed it events via WithSink
// and serve it with Server.
func NewProgress() *Progress { return obs.NewProgress() }

// NewTraceSink writes span lines to w.
func NewTraceSink(w io.Writer) *TraceSink { return obs.NewTraceSink(w) }

// RegisterHarness exports the global harness counters (batches,
// spins, clock reads) into reg.
func RegisterHarness(reg *Registry) { obs.RegisterHarness(reg) }

// RegisterSweepPlanner exports the adaptive sweep planner's decision
// counters (grid points measured vs skipped) into reg. Both stay zero
// unless a run uses SweepAdaptive.
func RegisterSweepPlanner(reg *Registry) { obs.RegisterSweepPlanner(reg) }

// RegisterJournal exports journal writer activity into reg.
func RegisterJournal(reg *Registry, jw *core.JournalWriter) { obs.RegisterJournal(reg, jw) }

// RegisterFaults exports fault-injection statistics into reg; stats
// reports cumulative counts.
func RegisterFaults(reg *Registry, stats func() (calls, errors, stalls, spikes int64)) {
	obs.RegisterFaults(reg, stats)
}
