package lmbench

import (
	"io"

	"repro/internal/machines"
)

// This file re-exports the declarative machine-profile surface: the
// canonical JSON encoding of simulated-machine profiles and the
// catalog registry that merges the built-in testbed with profiles
// loaded from files or fitted by the calibrator. A profile file is the
// portable form of a simulated machine — `lmbench -profile m.json
// -machine <name>` and a compiled-in profile with the same values
// produce byte-identical databases.

// Profile declares a simulated machine: identity, cache/memory
// geometry and the primitive costs the paper's tables report. Build
// one with NewSimMachineIn after registering it in a Catalog, or feed
// it to Calibrate as the starting point of a fit.
type Profile = machines.Profile

// Catalog is a registry of named profiles: the shipped set (compiled
// built-ins plus embedded data files) optionally extended with
// file-loaded and calibrated profiles. Later additions shadow earlier
// names.
type Catalog = machines.Catalog

// CatalogEntry is one catalog profile plus its provenance.
type CatalogEntry = machines.CatalogEntry

// Profile provenance values on CatalogEntry.Source.
const (
	ProfileSourceBuiltin    = machines.SourceBuiltin
	ProfileSourceFile       = machines.SourceFile
	ProfileSourceCalibrated = machines.SourceCalibrated
)

// DefaultCatalog returns a fresh copy of the shipped catalog — the
// compiled Table-1 testbed plus the embedded data-file profiles
// (remaining Table-1 machines, MP variants, modern geometries).
// Mutations stay local to the returned copy.
func DefaultCatalog() *Catalog { return machines.Default() }

// NewCatalog returns an empty catalog, for callers composing one from
// scratch rather than extending the shipped set.
func NewCatalog() *Catalog { return machines.NewCatalog() }

// LoadProfileFile reads and validates one canonical profile JSON file.
func LoadProfileFile(path string) (Profile, error) { return machines.LoadProfileFile(path) }

// WriteProfileFile writes p's canonical encoding to path.
func WriteProfileFile(path string, p Profile) error { return machines.WriteProfileFile(path, p) }

// EncodeProfile renders p in the canonical JSON encoding: the byte
// form that round-trips through DecodeProfile to an identical profile
// and an identical fingerprint.
func EncodeProfile(p Profile) ([]byte, error) { return machines.EncodeProfile(p) }

// DecodeProfile parses the canonical encoding, rejecting unknown
// fields, non-finite numbers and trailing data.
func DecodeProfile(data []byte) (Profile, error) { return machines.DecodeProfile(data) }

// NewSimMachineIn builds a simulated machine by name from cat (nil =
// the shipped catalog).
func NewSimMachineIn(cat *Catalog, name string) (Machine, error) {
	if cat == nil {
		cat = machines.Default()
	}
	p, ok := cat.ByName(name)
	if !ok {
		return nil, &UnknownMachineError{Name: name}
	}
	return machines.Build(p)
}

// CatalogMachineNames lists cat's profile names (nil = the shipped
// catalog), sorted.
func CatalogMachineNames(cat *Catalog) []string {
	if cat == nil {
		cat = machines.Default()
	}
	return cat.Names()
}

// RenderMachineList writes a human-readable catalog listing — name,
// CPU, OS, geometry summary and provenance — the `-list-machines`
// format.
func RenderMachineList(w io.Writer, cat *Catalog) error {
	if cat == nil {
		cat = machines.Default()
	}
	return machines.RenderList(w, cat)
}
