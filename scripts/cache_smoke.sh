#!/bin/sh
# cache_smoke.sh proves incremental evaluation end to end through the
# CLI: a cold run fills the unit cache, a warm run executes zero units
# yet produces a byte-identical database, and widening the experiment
# set recomputes only the newly selected units. Driven by
# `make cache-smoke`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-cache.XXXXXX)
dir=$(mktemp -d -t lmbench-cache-dir.XXXXXX)
cold=$(mktemp -t lmbench-cache-cold.XXXXXX)
warm=$(mktemp -t lmbench-cache-warm.XXXXXX)
fresh=$(mktemp -t lmbench-cache-fresh.XXXXXX)
log=$(mktemp -t lmbench-cache-log.XXXXXX)
cleanup() {
    rm -rf "$bin" "$dir" "$cold" "$warm" "$fresh" "$log"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench

# stats FIELD: pull one counter out of the run's `unit-cache:` line.
stats() {
    sed -n "s/^unit-cache: .*$1=\([0-9]*\).*/\1/p" "$log"
}

sum() {
    if command -v sha256sum > /dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

# Cold: everything misses and is stored.
"$bin" -machine all-sim -fast -only table2,table7 -unit-cache "$dir" -out "$cold" > /dev/null 2> "$log"
misses1=$(stats misses)
stored1=$(stats stored)
if [ "$misses1" -eq 0 ] || [ "$stored1" -ne "$misses1" ]; then
    echo "cache-smoke: cold run stats wrong: misses=$misses1 stored=$stored1" >&2
    exit 1
fi

# Warm: every unit is a hit, nothing executes, bytes are identical.
"$bin" -machine all-sim -fast -only table2,table7 -unit-cache "$dir" -out "$warm" > /dev/null 2> "$log"
hits2=$(stats hits)
misses2=$(stats misses)
if [ "$misses2" -ne 0 ] || [ "$hits2" -ne "$misses1" ]; then
    echo "cache-smoke: warm run stats wrong: hits=$hits2 misses=$misses2 (want hits=$misses1 misses=0)" >&2
    exit 1
fi
if grep -q '^running ' "$log"; then
    echo "cache-smoke: warm run executed experiments:" >&2
    grep '^running ' "$log" >&2
    exit 1
fi
c=$(sum "$cold")
w=$(sum "$warm")
if [ "$c" != "$w" ]; then
    echo "cache-smoke: WARM RUN DIVERGED: cold $c != warm $w" >&2
    exit 1
fi

# Widening the selection recomputes only the new units.
"$bin" -machine all-sim -fast -only table2,table7,table9 -unit-cache "$dir" -out /dev/null > /dev/null 2> "$log"
hits3=$(stats hits)
misses3=$(stats misses)
if [ "$hits3" -ne "$misses1" ] || [ "$misses3" -eq 0 ]; then
    echo "cache-smoke: widened run stats wrong: hits=$hits3 misses=$misses3 (want hits=$misses1, misses>0)" >&2
    exit 1
fi

# A fresh cold run of the widened set still matches a fully-warm one.
"$bin" -machine all-sim -fast -only table2,table7,table9 -unit-cache "$dir" -out "$fresh" > /dev/null 2> "$log"
misses4=$(stats misses)
if [ "$misses4" -ne 0 ]; then
    echo "cache-smoke: second widened run missed $misses4 units" >&2
    exit 1
fi

# Flipping an option moves every affected unit's key — nothing is
# served stale (the quality gate is a key ingredient: it changes the
# measured bytes).
"$bin" -machine all-sim -fast -only table2,table7 -max-rsd 0.2 -unit-cache "$dir" -out /dev/null > /dev/null 2> "$log"
hits5=$(stats hits)
misses5=$(stats misses)
if [ "$hits5" -ne 0 ] || [ "$misses5" -ne "$misses1" ]; then
    echo "cache-smoke: option flip served stale units: hits=$hits5 misses=$misses5 (want hits=0 misses=$misses1)" >&2
    exit 1
fi

echo "cache-smoke: ok (cold $misses1 units, warm 0 executed, widened +$misses3, option flip recomputed $misses5, sha256 $c)"
