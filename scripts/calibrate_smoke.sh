#!/bin/sh
# calibrate_smoke.sh proves the machine catalog and the calibrator end
# to end through the CLI:
#
#   1. declarative profiles — a run driven by a -profile file is
#      byte-identical to the same run on the compiled-in profile, so a
#      profile JSON is a complete definition of a simulated machine;
#   2. calibration — perturb a profile parameter, fit it back against
#      a measured target database, and prove the emitted profile
#      reproduces the target within tolerance.
#
# Driven by `make calibrate-smoke`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-cal.XXXXXX)
dir=$(mktemp -d -t lmbench-cal-dir.XXXXXX)
cleanup() {
    rm -rf "$bin" "$dir"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench

machine='Linux/i586'

# --- 1. profile-file byte identity -----------------------------------
"$bin" -dump-profile "$machine" > "$dir/i586.json"
"$bin" -machine "$machine" -fast -only table7,table8,table16 -quiet -out "$dir/compiled.db" > /dev/null
"$bin" -profile "$dir/i586.json" -machine "$machine" -fast -only table7,table8,table16 -quiet -out "$dir/loaded.db" > /dev/null
if ! cmp -s "$dir/compiled.db" "$dir/loaded.db"; then
    echo "calibrate-smoke: file-loaded profile run differs from compiled-in run" >&2
    exit 1
fi
echo "profile file: byte-identical run"

# --- 2. perturb -> fit -> verify -------------------------------------
# The target is what the pristine machine actually measures.
"$bin" -machine "$machine" -fast -only table7,table8 -quiet -out "$dir/want.db" > /dev/null

# Perturb the syscall cost (2us -> 5us in the canonical encoding).
sed 's/"SyscallUS": 2,/"SyscallUS": 5,/' "$dir/i586.json" > "$dir/pert.json"
if cmp -s "$dir/i586.json" "$dir/pert.json"; then
    echo "calibrate-smoke: perturbation did not change the profile" >&2
    exit 1
fi

"$bin" -profile "$dir/pert.json" -calibrate -machine "$machine" \
    -target "$dir/want.db" -emit "$dir/fitted.json" -quiet

# The fitted profile must run and reproduce the target's lat_syscall
# within 10%.
"$bin" -profile "$dir/fitted.json" -machine "$machine" -fast -only table7 -quiet -out "$dir/fitted.db" > /dev/null

scalar() {
    # results text format: entry "bench" "machine" "unit" <scalar>
    awk -v b="\"$1\"" '$1 == "entry" && $2 == b { print $5; exit }' "$2"
}
want=$(scalar lat_syscall "$dir/want.db")
got=$(scalar lat_syscall "$dir/fitted.db")
if [ -z "$want" ] || [ -z "$got" ]; then
    echo "calibrate-smoke: missing lat_syscall scalar (want='$want' got='$got')" >&2
    exit 1
fi
ok=$(awk -v w="$want" -v g="$got" 'BEGIN {
    d = g - w; if (d < 0) d = -d
    print (d <= 0.10 * w) ? "yes" : "no"
}')
if [ "$ok" != "yes" ]; then
    echo "calibrate-smoke: fitted lat_syscall=$got not within 10% of target $want" >&2
    exit 1
fi
echo "calibration: recovered lat_syscall=$got (target $want)"
echo "calibrate-smoke: OK"
