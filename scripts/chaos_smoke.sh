#!/bin/sh
# chaos_smoke.sh proves the distributed layer survives real chaos, end
# to end with real processes:
#
#   - every publish travels through a deterministic lossy proxy
#     (lmbench -chaos-net) injecting frame delays, drops, truncations,
#     duplicates and flips at a >=10% frame fault rate,
#   - the store daemon is kill -9'd while its first ingest session is
#     live, then restarted on the SAME address (its startup scrub
#     sweeps the debris the kill left behind),
#   - a serial `lmreport -publish` and a 2-worker fleet
#     `lmreport -fleet-workers 2 -publish` both land despite all of the
#     above and dedupe onto ONE content-addressed run whose database is
#     byte-identical to the committed golden results/simulated.db, and
#   - `lmbench -store-scrub` over the survivor reports a clean store.
#
# Driven by `make chaos-net`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-chaos-smoke.XXXXXX)
lmr=$(mktemp -t lmreport-chaos-smoke.XXXXXX)
err=$(mktemp -t lmbench-chaos-err1.XXXXXX)
err2=$(mktemp -t lmbench-chaos-err2.XXXXXX)
perr=$(mktemp -t lmbench-chaos-proxy.XXXXXX)
pout=$(mktemp -t lmbench-chaos-proxyout.XXXXXX)
puberr=$(mktemp -t lmbench-chaos-pub.XXXXXX)
fleeterr=$(mktemp -t lmbench-chaos-fleet.XXXXXX)
dir=$(mktemp -d -t lmbench-chaos-dir.XXXXXX)
got=$(mktemp -t lmbench-chaos-got.XXXXXX)
killed="$dir/.daemon-killed"
dpid=
ppid=
wpid=
pubpid=
cleanup() {
    for p in "$dpid" "$ppid" "$wpid" "$pubpid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$bin" "$lmr" "$err" "$err2" "$perr" "$pout" "$puberr" "$fleeterr" "$dir" "$got"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench
$GO build -o "$lmr" ./cmd/lmreport

# Daemon #1 (doomed): ephemeral ingest + HTTP ports, announced on
# stderr. The HTTP side exposes /metrics, which is how the killer below
# knows an ingest session is live.
"$bin" -store-listen 127.0.0.1:0 -store-dir "$dir" -store-http 127.0.0.1:0 2>"$err" &
dpid=$!
ingest=
api=
i=0
while [ $i -lt 100 ]; do
    ingest=$(sed -n 's|^results store daemon on \([^ ]*\).*|\1|p' "$err")
    api=$(sed -n 's|^store api: http://\([^/ ]*\).*|\1|p' "$err")
    [ -n "$ingest" ] && [ -n "$api" ] && break
    kill -0 "$dpid" 2>/dev/null || { echo "chaos-smoke: daemon died at boot:" >&2; cat "$err" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ingest" ] && [ -n "$api" ] || { echo "chaos-smoke: daemon never announced" >&2; cat "$err" >&2; exit 1; }

# The chaos proxy in front of the ingest address: a 30% frame fault
# rate (>= the 10% floor), seeded so the fault stream is reproducible,
# budgeted so the chaos eventually stops and retries converge. Delays
# dominate the mix to hold ingest sessions open long enough for the
# kill -9 to land mid-stream.
plan='seed=7,delay=0.20,delayfor=50ms,drop=0.04,trunc=0.03,dup=0.02,flip=0.01,budget=12'
"$bin" -chaos-net "$plan" -chaos-listen 127.0.0.1:0 -chaos-target "$ingest" >"$pout" 2>"$perr" &
ppid=$!
proxy=
i=0
while [ $i -lt 100 ]; do
    proxy=$(sed -n 's|^chaos proxy \([^ ]*\).*|\1|p' "$pout")
    [ -n "$proxy" ] && break
    kill -0 "$ppid" 2>/dev/null || { echo "chaos-smoke: proxy died at boot:" >&2; cat "$perr" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$proxy" ] || { echo "chaos-smoke: proxy never announced" >&2; exit 1; }

# The killer: the moment /metrics shows a live ingest session, the
# daemon dies with kill -9 — no drain, no fsync courtesy, exactly the
# crash the scrub machinery exists for.
(
    j=0
    while [ $j -lt 3000 ]; do
        n=$(curl -s "http://$api/metrics" 2>/dev/null |
            sed -n 's/^lmbench_store_ingest_sessions_total \([0-9.]*\).*/\1/p')
        case $n in
        '' | 0 | 0.*) ;;
        *)
            kill -9 "$dpid" 2>/dev/null || true
            : >"$killed"
            exit 0
            ;;
        esac
        sleep 0.02
        j=$((j + 1))
    done
) &
wpid=$!

# The serial evaluation, publishing through the chaos with retries.
# Safe to retry blindly: runs are content-addressed, so a half-landed
# publish is finished idempotently by the next attempt.
"$lmr" -publish "$proxy" -publish-retries 15 -run-label chaos 2>"$puberr" >/dev/null &
pubpid=$!

# Wait for the kill, then restart the daemon on the SAME ingest
# address — its startup scrub sweeps the torn-write debris. The port
# may linger briefly after the kill, so creep up on the bind.
i=0
while [ ! -f "$killed" ] && [ $i -lt 600 ]; do
    sleep 0.1
    i=$((i + 1))
done
[ -f "$killed" ] || { echo "chaos-smoke: daemon was never killed mid-ingest" >&2; cat "$puberr" >&2; exit 1; }
wait "$dpid" 2>/dev/null || true
dpid=
wpid=
restarted=
i=0
while [ $i -lt 20 ]; do
    : >"$err2"
    "$bin" -store-listen "$ingest" -store-dir "$dir" -store-http 127.0.0.1:0 2>"$err2" &
    dpid=$!
    j=0
    while [ $j -lt 50 ]; do
        if grep -q '^results store daemon on ' "$err2" && grep -q '^store api: ' "$err2"; then
            restarted=1
            break
        fi
        kill -0 "$dpid" 2>/dev/null || break
        sleep 0.1
        j=$((j + 1))
    done
    [ -n "$restarted" ] && break
    kill "$dpid" 2>/dev/null || true
    dpid=
    sleep 0.2
    i=$((i + 1))
done
[ -n "$restarted" ] || { echo "chaos-smoke: could not rebind $ingest after the kill:" >&2; cat "$err2" >&2; exit 1; }
grep -q '^startup scrub: ' "$err2" || { echo "chaos-smoke: restarted daemon skipped its startup scrub" >&2; exit 1; }
api=$(sed -n 's|^store api: http://\([^/ ]*\).*|\1|p' "$err2")

# The serial publish must converge onto the restarted daemon.
wait "$pubpid" || { pubpid=; echo "chaos-smoke: serial publish failed:" >&2; cat "$puberr" >&2; exit 1; }
pubpid=
run1=$(sed -n 's/^published run //p' "$puberr")
[ -n "$run1" ] || { echo "chaos-smoke: serial publish announced no run" >&2; cat "$puberr" >&2; exit 1; }

# The identical evaluation across a 2-process fleet, still through the
# proxy: it must dedupe onto the same content-addressed run.
run2=$("$lmr" -fleet-workers 2 -publish "$proxy" -publish-retries 15 2>&1 >/dev/null |
    tee "$fleeterr" | sed -n 's/^published run //p')
if [ -z "$run2" ] || [ "$run2" != "$run1" ]; then
    echo "chaos-smoke: fleet run '$run2' did not dedupe onto serial run '$run1'" >&2
    cat "$fleeterr" >&2
    exit 1
fi
count=$(curl -fsS "http://$api/api/runs" | grep -c '"run_id"')
[ "$count" = 1 ] || { echo "chaos-smoke: store holds $count runs, want 1 (no dedupe)" >&2; exit 1; }

# The survivor's database is byte-identical to the committed golden.
curl -fsS "http://$api/api/runs/latest/db" -o "$got"
cmp -s "$got" results/simulated.db ||
    { echo "chaos-smoke: stored run differs from results/simulated.db" >&2; exit 1; }

# Graceful drain on SIGTERM, then an offline scrub must report clean.
kill -TERM "$dpid"
wait "$dpid" 2>/dev/null || true
dpid=
"$bin" -store-scrub -store-dir "$dir" | grep -q 'store clean' ||
    { echo "chaos-smoke: post-crash scrub found damage" >&2; "$bin" -store-scrub -store-dir "$dir" >&2 || true; exit 1; }

# The proxy reports what it injected on the way out.
kill -TERM "$ppid" 2>/dev/null || true
wait "$ppid" 2>/dev/null || true
ppid=
stats=$(sed -n 's/^chaos proxy: //p' "$perr")
echo "chaos-smoke: ok (run deduped, db byte-identical, store clean; $stats)"
