#!/bin/sh
# fleet_smoke.sh runs a short evaluation twice — serially and across a
# 3-process worker fleet — and proves the encoded databases are
# byte-identical (equal SHA-256). Driven by `make fleet-smoke`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-fleet.XXXXXX)
serial=$(mktemp -t lmbench-fleet-serial.XXXXXX)
fleet=$(mktemp -t lmbench-fleet-fleet.XXXXXX)
cleanup() {
    rm -f "$bin" "$serial" "$fleet"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench

"$bin" -machine all-sim -fast -quiet -only table2,table7 -out "$serial" > /dev/null
"$bin" -machine all-sim -fast -quiet -only table2,table7 -fleet-workers 3 -out "$fleet" > /dev/null

sum() {
    if command -v sha256sum > /dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

s=$(sum "$serial")
f=$(sum "$fleet")
if [ "$s" != "$f" ]; then
    echo "fleet-smoke: FLEET DIVERGED: serial $s != fleet $f" >&2
    exit 1
fi
echo "fleet-smoke: ok (serial == 3-worker fleet, sha256 $s)"
