#!/bin/sh
# serve_smoke.sh boots a short real run with `lmbench -serve` on an
# ephemeral port and proves the three observability endpoints answer
# while the run is live. Driven by `make serve-smoke`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-smoke.XXXXXX)
err=$(mktemp -t lmbench-smoke-err.XXXXXX)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -f "$bin" "$err"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench

# The server announces its bound address on stderr; :0 keeps the smoke
# free of port collisions.
"$bin" -machine 'Linux/i686' -fast -serve 127.0.0.1:0 -out /dev/null 2>"$err" &
pid=$!

addr=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|^observability: http://\([^/ ]*\).*|\1|p' "$err")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: run exited before serving:" >&2
        cat "$err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server never announced an address" >&2
    cat "$err" >&2
    exit 1
fi

curl -fsS "http://$addr/healthz" | grep -q '^ok$'
curl -fsS "http://$addr/metrics" | grep -q '^lmbench_'
curl -fsS "http://$addr/progress" | grep -q '"machines"'
echo "serve-smoke: ok ($addr)"
