#!/bin/sh
# store_smoke.sh boots a results-store daemon on ephemeral ports,
# publishes the same short evaluation twice — once serial, once across
# a 2-process fleet — and proves the service end to end:
#
#   - both publishes dedupe onto ONE content-addressed run (fleet
#     execution is byte-identical to serial, through the wire protocol
#     and the store),
#   - the comparison table answers with a strong ETag and a second
#     conditional GET revalidates to 304, and
#   - the regression report between identical runs is empty.
#
# Driven by `make store-smoke`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-store-smoke.XXXXXX)
err=$(mktemp -t lmbench-store-smoke-err.XXXXXX)
dir=$(mktemp -d -t lmbench-store-smoke-dir.XXXXXX)
hdr=$(mktemp -t lmbench-store-smoke-hdr.XXXXXX)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$err" "$dir" "$hdr"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench

# The daemon announces both bound addresses on stderr; :0 keeps the
# smoke free of port collisions.
"$bin" -store-listen 127.0.0.1:0 -store-dir "$dir" -store-http 127.0.0.1:0 2>"$err" &
pid=$!

ingest=
api=
i=0
while [ $i -lt 100 ]; do
    ingest=$(sed -n 's|^results store daemon on \([^ ]*\).*|\1|p' "$err")
    api=$(sed -n 's|^store api: http://\([^/ ]*\).*|\1|p' "$err")
    [ -n "$ingest" ] && [ -n "$api" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "store-smoke: daemon exited before serving:" >&2
        cat "$err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ingest" ] || [ -z "$api" ]; then
    echo "store-smoke: daemon never announced its addresses" >&2
    cat "$err" >&2
    exit 1
fi

# Publish the identical configuration serially and as a fleet; the
# announced run IDs must match (content-addressed dedupe).
run1=$("$bin" -machine 'Linux/i686' -fast -publish "$ingest" -run-label smoke 2>&1 >/dev/null | sed -n 's/^published run //p')
run2=$("$bin" -machine 'Linux/i686' -fast -fleet-workers 2 -publish "$ingest" 2>&1 >/dev/null | sed -n 's/^published run //p')
if [ -z "$run1" ] || [ "$run1" != "$run2" ]; then
    echo "store-smoke: fleet run '$run2' did not dedupe onto serial run '$run1'" >&2
    exit 1
fi
curl -fsS "http://$api/api/runs" | grep -c '"run_id"' | grep -qx 1

# The comparison table: first GET carries a strong ETag, the second
# revalidates to 304.
url="http://$api/api/compare?ref=smoke&got=latest"
curl -fsS -D "$hdr" "$url" | grep -q '^benchmark'
etag=$(tr -d '\r' <"$hdr" | sed -n 's/^[Ee][Tt]ag: //p')
[ -n "$etag" ] || { echo "store-smoke: comparison carried no ETag" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "$url")
if [ "$code" != 304 ]; then
    echo "store-smoke: conditional re-GET returned $code, want 304" >&2
    exit 1
fi

# The regression report between identical runs is empty.
curl -fsS "http://$api/api/regressions?base=smoke&head=latest" | grep -q '^no significant changes'

echo "store-smoke: ok (run ${run1%"${run1#????????????}"} via $ingest, api $api)"
