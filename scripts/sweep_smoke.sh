#!/bin/sh
# sweep_smoke.sh proves adaptive sweep planning end to end through the
# CLI: an adaptive run reports real point savings on the memory-sweep
# experiments, is byte-identical across shard counts, and the modes
# that must not compose (adaptive+chaos, adaptive resume of an
# exhaustive journal) are refused. Driven by `make sweep-smoke`.
set -eu

GO=${GO:-go}
bin=$(mktemp -t lmbench-sweep.XXXXXX)
adp1=$(mktemp -t lmbench-sweep-a1.XXXXXX)
adp4=$(mktemp -t lmbench-sweep-a4.XXXXXX)
jnl=$(mktemp -t lmbench-sweep-jnl.XXXXXX)
log=$(mktemp -t lmbench-sweep-log.XXXXXX)
cleanup() {
    rm -f "$bin" "$adp1" "$adp4" "$jnl" "$log"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/lmbench

# stats FIELD: pull one counter out of the run's `sweep:` line.
stats() {
    sed -n "s/^sweep: .*$1=\([0-9]*\).*/\1/p" "$log"
}

sum() {
    if command -v sha256sum > /dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

# Adaptive run: the planner must skip at least as many grid points as
# it measures on the memory-hierarchy sweep (the >=2x reduction gate).
"$bin" -machine 'Linux/i686' -only figure1,table6 -sweep adaptive -out "$adp1" > /dev/null 2> "$log"
measured=$(stats measured)
skipped=$(stats skipped)
if [ -z "$measured" ] || [ "$measured" -eq 0 ]; then
    echo "sweep-smoke: no sweep stats line (measured=$measured)" >&2
    exit 1
fi
if [ "$skipped" -lt "$measured" ]; then
    echo "sweep-smoke: weak reduction: measured=$measured skipped=$skipped (want skipped >= measured)" >&2
    exit 1
fi

# Sharded adaptive run is byte-identical: planning decisions depend
# only on measured values, never on execution order.
"$bin" -machine 'Linux/i686' -only figure1,table6 -sweep adaptive -shards 4 -out "$adp4" > /dev/null 2> "$log"
a1=$(sum "$adp1")
a4=$(sum "$adp4")
if [ "$a1" != "$a4" ]; then
    echo "sweep-smoke: SHARDED ADAPTIVE DIVERGED: shards=1 $a1 != shards=4 $a4" >&2
    exit 1
fi

# Adaptive + chaos must be refused: injected noise would steer the
# planner's transition detection.
if "$bin" -machine 'Linux/i686' -only figure1 -sweep adaptive -chaos 'seed=1,err=0.3' > /dev/null 2> "$log"; then
    echo "sweep-smoke: -sweep adaptive -chaos was accepted" >&2
    exit 1
fi
if ! grep -q 'does not compose' "$log"; then
    echo "sweep-smoke: adaptive+chaos refusal has wrong message:" >&2
    cat "$log" >&2
    exit 1
fi

# An adaptive run must refuse to replay an exhaustive journal: the
# replayed entries would silently claim full-grid coverage.
"$bin" -machine 'Linux/i686' -only figure1,table6 -journal "$jnl" > /dev/null 2> "$log"
if "$bin" -machine 'Linux/i686' -only figure1,table6 -sweep adaptive -resume "$jnl" > /dev/null 2> "$log"; then
    echo "sweep-smoke: adaptive resume of an exhaustive journal was accepted" >&2
    exit 1
fi
if ! grep -q 'exhaustive-sweep results' "$log"; then
    echo "sweep-smoke: cross-mode resume refusal has wrong message:" >&2
    cat "$log" >&2
    exit 1
fi

echo "sweep-smoke: ok (measured=$measured skipped=$skipped, shards byte-identical $a1, chaos and cross-mode resume refused)"
