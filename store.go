package lmbench

import (
	"context"
	"net"

	istore "repro/internal/store"
)

// This file re-exports the results store so binaries can persist,
// publish and serve multi-run results from the facade alone. The store
// is content-addressed: runs are keyed by the hash of (machines,
// options fingerprint, code version, content hash), so identical
// deterministic runs dedupe and every HTTP response carries a strong
// content-derived ETag. See Report.RunID, WithStore, WithPublish.

// Store is a persistent, content-addressed multi-run results store on
// a directory; see OpenStore.
type Store = istore.Store

// Manifest describes one stored run: machines, options fingerprint,
// code version, content hash, ingest sequence.
type Manifest = istore.Manifest

// StoreServer is the store's HTTP query/compare surface: run listings,
// paper-style tables, comparisons, trend series and regression
// reports, all behind content-hash ETags. Configure with a Store and
// an optional metrics Registry, then Start it or mount Handler.
type StoreServer = istore.Server

// OpenStore opens (creating if needed) the results store rooted at
// dir.
func OpenStore(dir string) (*Store, error) { return istore.Open(dir) }

// PublishRun streams a database to a results-store daemon at addr
// (see ServeStoreIngest); the returned manifest carries the
// daemon-assigned run identity. The store fills m's ContentHash,
// Entries, RunID, Seq and Created.
func PublishRun(ctx context.Context, addr string, m Manifest, db *DB) (Manifest, error) {
	return istore.Publish(ctx, addr, m, db)
}

// ServeStoreIngest accepts publish sessions on ln and ingests them
// into s until ctx is cancelled — the daemon side of WithPublish and
// PublishRun.
func ServeStoreIngest(ctx context.Context, ln net.Listener, s *Store) error {
	return istore.Serve(ctx, ln, s)
}
