package lmbench

import (
	"context"
	"net"

	"repro/internal/obs"
	istore "repro/internal/store"
)

// This file re-exports the results store so binaries can persist,
// publish and serve multi-run results from the facade alone. The store
// is content-addressed: runs are keyed by the hash of (machines,
// options fingerprint, code version, content hash), so identical
// deterministic runs dedupe and every HTTP response carries a strong
// content-derived ETag. See Report.RunID, WithStore, WithPublish.

// Store is a persistent, content-addressed multi-run results store on
// a directory; see OpenStore.
type Store = istore.Store

// Manifest describes one stored run: machines, options fingerprint,
// code version, content hash, ingest sequence.
type Manifest = istore.Manifest

// StoreServer is the store's HTTP query/compare surface: run listings,
// paper-style tables, comparisons, trend series and regression
// reports, all behind content-hash ETags. Configure with a Store and
// an optional metrics Registry, then Start it or mount Handler.
type StoreServer = istore.Server

// OpenStore opens (creating if needed) the results store rooted at
// dir.
func OpenStore(dir string) (*Store, error) { return istore.Open(dir) }

// PublishOptions tunes PublishRunWith: retry count and backoff for
// transport failures, idle deadlines, and test seams. The zero value
// selects production defaults (4 retries, 100ms initial backoff
// doubling to 30s, 30s idle timeout).
type PublishOptions = istore.PublishOptions

// IngestOptions tunes ServeStoreIngestWith: session deadlines, drain
// budget, metrics registry, and test seams. The zero value selects
// production defaults.
type IngestOptions = istore.IngestOptions

// ScrubReport is what Store.Scrub found and repaired; see
// (*Store).Scrub.
type ScrubReport = istore.ScrubReport

// PublishRun streams a database to a results-store daemon at addr
// (see ServeStoreIngest); the returned manifest carries the
// daemon-assigned run identity. The store fills m's ContentHash,
// Entries, RunID, Seq and Created. Transport failures are retried with
// capped backoff — safe because runs are content-addressed, so a
// half-landed publish is finished idempotently by the next attempt.
func PublishRun(ctx context.Context, addr string, m Manifest, db *DB) (Manifest, error) {
	return istore.Publish(ctx, addr, m, db)
}

// PublishRunWith is PublishRun with explicit retry/deadline options.
func PublishRunWith(ctx context.Context, addr string, m Manifest, db *DB, o PublishOptions) (Manifest, error) {
	return istore.PublishWith(ctx, addr, m, db, o)
}

// ServeStoreIngest accepts publish sessions on ln and ingests them
// into s until ctx is cancelled — the daemon side of WithPublish and
// PublishRun. Cancellation drains gracefully: in-flight commits
// finish (bounded by the drain budget) before it returns nil.
func ServeStoreIngest(ctx context.Context, ln net.Listener, s *Store) error {
	return istore.Serve(ctx, ln, s)
}

// ServeStoreIngestWith is ServeStoreIngest with explicit deadline,
// drain and metrics options.
func ServeStoreIngestWith(ctx context.Context, ln net.Listener, s *Store, o IngestOptions) error {
	return istore.ServeIngest(ctx, ln, s, o)
}

// RegisterPublishRetries exports this process's publish retry total
// into reg as lmbench_publish_retries_total.
func RegisterPublishRetries(reg *Registry) {
	obs.RegisterPublishRetries(reg, istore.PublishRetries)
}
