package lmbench

import (
	"repro/internal/core"
	"repro/internal/unitcache"
)

// This file re-exports the unit cache — incremental evaluation for
// warm runs — so binaries can wire it from the facade alone. The
// cache keys each work unit (one machine × one experiment group) by
// the machine profile fingerprint, the experiment group key, the
// normalized-options fingerprint and the simulator code version, and
// persists the unit's database fragment content-addressed on disk. A
// later run whose key matches reuses the fragment instead of
// re-executing the unit, producing a byte-identical database; any key
// ingredient changing (options, profile, code version, quality gate)
// recomputes exactly the affected units.

// UnitCache is a content-addressed store of completed work-unit
// results; see OpenUnitCache and WithUnitCache.
type UnitCache = unitcache.Cache

// UnitCacheConfig tunes a UnitCache: read-only mode, the LRU size cap
// and the traffic observer.
type UnitCacheConfig = unitcache.Config

// CacheStats is a snapshot of unit-cache traffic counters; its String
// form is the CLI's stats line.
type CacheStats = unitcache.Stats

// CacheObserver receives unit-cache traffic callbacks as they happen;
// CacheMetrics satisfies it.
type CacheObserver = unitcache.Observer

// OpenUnitCache opens (creating if needed) the unit cache rooted at
// dir for runs with the given options. This is the programmatic form
// of WithUnitCache, for callers driving core.Runner or the fleet
// coordinator directly; pass the cache through their Cache field.
// Note the quality-gate settings live in UnitCacheConfig, not Options
// — they are key ingredients because they change the measured bytes.
func OpenUnitCache(dir string, opts Options, cfg UnitCacheConfig) (*UnitCache, error) {
	return unitcache.Open(dir, opts, cfg)
}

// Compile-time check that the concrete cache satisfies the hook the
// suite and coordinator consult.
var _ core.UnitCache = (*unitcache.Cache)(nil)
